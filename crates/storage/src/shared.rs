//! The process-wide, sharded, pinned-frame page cache.
//!
//! Every access path in the reproduction — the TRANSFORMERS join, the
//! GIPSY walk+crawl, the R-tree/B+-tree baselines and the serving layer —
//! bottoms out in page reads against an immutable [`Disk`]. Before this
//! module each worker owned a *private* [`crate::BufferPool`], so a hot
//! page was duplicated in N worker caches, re-read from the disk by every
//! worker that touched it, and re-decoded on every visit. The
//! [`SharedPageCache`] replaces those N private pools with **one**
//! process-wide cache:
//!
//! * **Sharded / lock-striped** — the page-id space is striped over
//!   independently locked shards (consecutive pages land on different
//!   shards), so concurrent readers rarely contend; contention that does
//!   happen is counted ([`CacheStats::lock_contended`]).
//! * **CLOCK eviction per shard** — the same second-chance ring as the
//!   private pool ([`crate::clock`]), with pinned frames skipped.
//! * **Zero-copy pin guards** — [`SharedPageCache::read`] hands out a
//!   [`PageRef`] that borrows the cached bytes (`Deref<Target = [u8]>`)
//!   by bumping the frame's `Arc`; no bytes are copied and no `Vec` is
//!   allocated per read. A pinned frame cannot be recycled: eviction
//!   checks the `Arc` count under the shard lock, so a live guard always
//!   observes the page it pinned.
//! * **Recycled miss buffers** — a miss evicts an unpinned victim and
//!   reads the new page *into the victim's buffer*; at steady state a
//!   miss allocates nothing.
//! * **Decoded second tier** — element pages are usually consumed through
//!   [`crate::ElementPageCodec::decode`]; the cache keeps the decoded
//!   `Arc<[SpatialElement]>` alongside the frame
//!   ([`SharedPageCache::read_decoded`]), so repeated probes of a hot page
//!   skip the decode entirely. Decoded entries live and die with their
//!   frame.
//!
//! Reads take `&self`; the cache is `Sync` and is meant to be shared by
//! reference across worker threads (see `transformers::UnitReader` and
//! the serve engines). Results are unaffected by caching — decode is pure
//! and the disk is immutable during joins/serves — so join and serve
//! outputs stay byte-identical to the private-pool ablation at any worker
//! count; only the I/O counters improve.
//!
//! Miss fills and decodes run **under the shard lock**. That serializes
//! co-shard misses, but it also guarantees each page is read and decoded
//! at most once per residency (no thundering-herd duplicate I/O) and
//! keeps the pin check race-free; against the in-memory store a fill is a
//! `memcpy`, so the hold time is small and the `lock_contended` counter
//! makes the cost observable. For the real-file backend the prefetch path
//! below is the escape hatch: [`SharedPageCache::prefetch_page`] performs
//! the disk read **outside** the shard lock into a caller-owned scratch
//! buffer, then lands the bytes into a recycled victim frame under the
//! lock — dedicated I/O threads overlap their device latencies while the
//! worker miss path keeps its serialize-per-shard simplicity.
//!
//! Prefetched frames are marked until first use. The marks drive the
//! `io.prefetch.*` counters ([`CacheStats::prefetch_issued`],
//! [`CacheStats::prefetch_hits`], [`CacheStats::prefetch_unused`]), which
//! are **disjoint** from the hit/miss pair: a read served by a frame the
//! prefetcher landed counts as neither a hit nor a miss, so readahead can
//! never inflate a hit-fraction gate.

use crate::twoq::{AdmitClass, PolicyRing};
use crate::{CachePolicy, Disk, ElementPageCodec, PageId};
use parking_lot::Mutex;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tfm_geom::SpatialElement;

/// Default shard count for caches shared by a handful of workers.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// One frame of a shard: the pinned page bytes plus the decoded tier.
struct SharedFrame {
    /// Page bytes; `Arc` strong count > 1 means the frame is pinned by at
    /// least one live [`PageRef`] and must not be recycled.
    buf: Arc<Vec<u8>>,
    /// Decoded element records, populated lazily by `read_decoded`.
    decoded: Option<Arc<[SpatialElement]>>,
    /// True from a prefetch landing until the first demand read; drives
    /// the `io.prefetch.*` accounting.
    prefetched: bool,
    /// True while the frame holds bytes newer than the disk image. Dirty
    /// frames are never evicted (the ring grows instead) and only reach
    /// the store through [`SharedPageCache::flush_dirty`].
    dirty: bool,
    /// LSN of the WAL record that logged the frame's current bytes; the
    /// flush gate compares it against the log's durable LSN so no page
    /// reaches the store before its redo record is on stable storage.
    page_lsn: u64,
}

/// Per-shard counters (kept inside the shard lock; aggregated on demand).
#[derive(Default)]
struct ShardCounters {
    hits: u64,
    misses: u64,
    decoded_hits: u64,
    decoded_misses: u64,
    evictions: u64,
    recycled_frames: u64,
    fresh_allocs: u64,
    prefetch_issued: u64,
    prefetch_hits: u64,
    prefetch_unused: u64,
    dirty_installs: u64,
    flushed_pages: u64,
}

struct ShardInner {
    ring: PolicyRing<SharedFrame>,
    counters: ShardCounters,
}

struct Shard {
    inner: Mutex<ShardInner>,
    /// Lock acquisitions / acquisitions that found the lock held — the
    /// shard-contention signal reported in [`CacheStats`].
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

impl Shard {
    fn lock(&self) -> std::sync::MutexGuard<'_, ShardInner> {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Some(g) = self.inner.try_lock() {
            return g;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.inner.lock()
    }
}

/// A zero-copy pin guard over one cached page.
///
/// Holding a `PageRef` pins the frame: the shard's CLOCK sweep skips
/// pinned frames, so the bytes seen through the guard are immutable and
/// always belong to the page that was read — even if the frame table has
/// since moved on. Dropping the guard unpins the frame.
#[derive(Debug, Clone)]
pub struct PageRef {
    buf: Arc<Vec<u8>>,
}

impl Deref for PageRef {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Which tier answered a [`SharedPageCache::read_tracked`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The page tier had the frame (a demand read put it there).
    Hit,
    /// The frame was landed by the prefetcher and this is its first
    /// demand read — counted as `io.prefetch.hits`, **not** as a cache
    /// hit, so readahead cannot inflate hit fractions.
    PrefetchHit,
    /// The page was read from disk on demand.
    Miss,
}

/// Which tier answered a [`SharedPageCache::read_decoded_tracked`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedOutcome {
    /// The decoded tier had the elements: no page read, no decode.
    Decoded,
    /// The page bytes were cached but had to be decoded.
    Page,
    /// The page bytes were landed by the prefetcher (first demand read of
    /// the frame); the decode still ran. Counted like
    /// [`ReadOutcome::PrefetchHit`] on the page tier.
    PrefetchedPage,
    /// Full miss: the page was read from disk and decoded.
    Miss,
}

/// Aggregated counters of a [`SharedPageCache`] (or the delta between two
/// snapshots of one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page-tier hits (bytes served from a resident frame).
    pub hits: u64,
    /// Page-tier misses (disk page reads).
    pub misses: u64,
    /// Decoded-tier hits (decode skipped entirely).
    pub decoded_hits: u64,
    /// Decoded-tier misses (a decode ran).
    pub decoded_misses: u64,
    /// Frames whose page was evicted to make room.
    pub evictions: u64,
    /// Misses served by recycling an evicted frame's buffer in place.
    pub recycled_frames: u64,
    /// Misses that had to allocate a fresh frame buffer (pool still
    /// filling, or every victim candidate was pinned).
    pub fresh_allocs: u64,
    /// Pages the prefetch pipeline read and landed into frames.
    pub prefetch_issued: u64,
    /// Demand reads served by a still-marked prefetched frame (disjoint
    /// from `hits`/`misses`, so readahead cannot inflate hit fractions).
    pub prefetch_hits: u64,
    /// Prefetched frames evicted before any demand read used them —
    /// wasted readahead.
    pub prefetch_unused: u64,
    /// Writes installed into the dirty tier (cache writes not yet on disk
    /// at the time of the write).
    pub dirty_installs: u64,
    /// Dirty frames written back to the store by `flush_dirty`.
    pub flushed_pages: u64,
    /// Shard-lock acquisitions.
    pub lock_acquisitions: u64,
    /// Acquisitions that found the shard lock already held — the
    /// lock-striping contention signal.
    pub lock_contended: u64,
    /// Demand misses the 2Q ghost queue admitted straight to the
    /// protected tier (zero under [`CachePolicy::Clock`]).
    pub twoq_ghost_promotions: u64,
    /// Probationary frames the 2Q policy promoted on a second demand
    /// access while resident.
    pub twoq_reuse_promotions: u64,
    /// Fills the 2Q policy classified as scan traffic (prefetch landings;
    /// always probationary).
    pub twoq_scan_admissions: u64,
    /// 2Q evictions taken from the probationary tier.
    pub twoq_probation_evictions: u64,
    /// 2Q evictions taken from the protected tier.
    pub twoq_protected_evictions: u64,
    /// Replacement policy of the cache (configuration, not a counter).
    pub policy: CachePolicy,
    /// Shard count of the cache (configuration, not a counter).
    pub shards: usize,
    /// Total frame capacity in pages (configuration, not a counter).
    pub capacity: usize,
}

impl CacheStats {
    /// Page-tier hit fraction in `0.0..=1.0` (0 when idle).
    pub fn hit_fraction(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Decoded-tier hit fraction in `0.0..=1.0` (0 when idle).
    pub fn decoded_hit_fraction(&self) -> f64 {
        let total = self.decoded_hits + self.decoded_misses;
        if total == 0 {
            return 0.0;
        }
        self.decoded_hits as f64 / total as f64
    }

    /// Fraction of shard-lock acquisitions that found the lock held.
    pub fn contention_fraction(&self) -> f64 {
        if self.lock_acquisitions == 0 {
            return 0.0;
        }
        self.lock_contended as f64 / self.lock_acquisitions as f64
    }

    /// Publishes the shared-cache-only counters into `reg` under the
    /// `cache.*` naming scheme (see `tfm_obs::names`).
    ///
    /// Deliberately excludes `hits`/`misses`: those are owned by the
    /// handle-local pool counters and published once by the run-level
    /// reporter (join or serve), so page-tier traffic never double-counts
    /// when both a handle delta and a shared-cache snapshot are in hand.
    pub fn publish_shared_extras(&self, reg: &tfm_obs::MetricsRegistry) {
        use tfm_obs::names;
        reg.counter(names::CACHE_DECODED_HITS)
            .add(self.decoded_hits);
        reg.counter(names::CACHE_DECODED_MISSES)
            .add(self.decoded_misses);
        reg.counter(names::CACHE_EVICTIONS).add(self.evictions);
        reg.counter(names::CACHE_RECYCLED_FRAMES)
            .add(self.recycled_frames);
        reg.counter(names::CACHE_FRESH_ALLOCS)
            .add(self.fresh_allocs);
        reg.counter(names::CACHE_LOCK_ACQUISITIONS)
            .add(self.lock_acquisitions);
        reg.counter(names::CACHE_LOCK_CONTENDED)
            .add(self.lock_contended);
        reg.counter(names::IO_PREFETCH_ISSUED)
            .add(self.prefetch_issued);
        reg.counter(names::IO_PREFETCH_HITS).add(self.prefetch_hits);
        reg.counter(names::IO_PREFETCH_UNUSED)
            .add(self.prefetch_unused);
        reg.counter(names::CACHE_DIRTY_INSTALLS)
            .add(self.dirty_installs);
        reg.counter(names::CACHE_FLUSHED_PAGES)
            .add(self.flushed_pages);
        // The 2Q admission counters only exist when the policy is active,
        // so a CLOCK run's metrics dump carries no dead `cache.2q.*` rows.
        if self.policy == CachePolicy::TwoQ {
            reg.counter(names::CACHE_2Q_GHOST_PROMOTIONS)
                .add(self.twoq_ghost_promotions);
            reg.counter(names::CACHE_2Q_REUSE_PROMOTIONS)
                .add(self.twoq_reuse_promotions);
            reg.counter(names::CACHE_2Q_SCAN_ADMISSIONS)
                .add(self.twoq_scan_admissions);
            reg.counter(names::CACHE_2Q_PROBATION_EVICTIONS)
                .add(self.twoq_probation_evictions);
            reg.counter(names::CACHE_2Q_PROTECTED_EVICTIONS)
                .add(self.twoq_protected_evictions);
        }
    }

    /// Counter-wise difference `self - earlier` (configuration fields are
    /// carried over); use to measure one phase of a longer run.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            decoded_hits: self.decoded_hits - earlier.decoded_hits,
            decoded_misses: self.decoded_misses - earlier.decoded_misses,
            evictions: self.evictions - earlier.evictions,
            recycled_frames: self.recycled_frames - earlier.recycled_frames,
            fresh_allocs: self.fresh_allocs - earlier.fresh_allocs,
            prefetch_issued: self.prefetch_issued - earlier.prefetch_issued,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            prefetch_unused: self.prefetch_unused - earlier.prefetch_unused,
            dirty_installs: self.dirty_installs - earlier.dirty_installs,
            flushed_pages: self.flushed_pages - earlier.flushed_pages,
            lock_acquisitions: self.lock_acquisitions - earlier.lock_acquisitions,
            lock_contended: self.lock_contended - earlier.lock_contended,
            twoq_ghost_promotions: self.twoq_ghost_promotions - earlier.twoq_ghost_promotions,
            twoq_reuse_promotions: self.twoq_reuse_promotions - earlier.twoq_reuse_promotions,
            twoq_scan_admissions: self.twoq_scan_admissions - earlier.twoq_scan_admissions,
            twoq_probation_evictions: self.twoq_probation_evictions
                - earlier.twoq_probation_evictions,
            twoq_protected_evictions: self.twoq_protected_evictions
                - earlier.twoq_protected_evictions,
            policy: self.policy,
            shards: self.shards,
            capacity: self.capacity,
        }
    }
}

/// The process-wide sharded page cache. See the module docs.
pub struct SharedPageCache<'d> {
    disk: &'d Disk,
    shards: Box<[Shard]>,
    capacity: usize,
    policy: CachePolicy,
}

impl<'d> SharedPageCache<'d> {
    /// Creates a cache of `capacity` pages total, striped over `shards`
    /// locks (both clamped to at least 1), replacing frames under
    /// `policy`. Each shard gets an equal slice of the capacity.
    pub fn with_policy(
        disk: &'d Disk,
        capacity: usize,
        shards: usize,
        policy: CachePolicy,
    ) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        let per_shard = (capacity / shards).max(1);
        let shards: Box<[Shard]> = (0..shards)
            .map(|_| Shard {
                inner: Mutex::new(ShardInner {
                    ring: PolicyRing::new(policy, per_shard),
                    counters: ShardCounters::default(),
                }),
                acquisitions: AtomicU64::new(0),
                contended: AtomicU64::new(0),
            })
            .collect();
        let capacity = per_shard * shards.len();
        Self {
            disk,
            shards,
            capacity,
            policy,
        }
    }

    /// [`with_policy`](Self::with_policy) under the default CLOCK policy.
    pub fn with_shards(disk: &'d Disk, capacity: usize, shards: usize) -> Self {
        Self::with_policy(disk, capacity, shards, CachePolicy::Clock)
    }

    /// Creates a cache of `capacity` pages with [`DEFAULT_CACHE_SHARDS`].
    pub fn new(disk: &'d Disk, capacity: usize) -> Self {
        Self::with_shards(disk, capacity, DEFAULT_CACHE_SHARDS)
    }

    /// Shard count sized for `threads` concurrent readers: about two
    /// shards per worker, a power of two, at most 64.
    pub fn shards_for_threads(threads: usize) -> usize {
        (threads.max(1) * 2).next_power_of_two().min(64)
    }

    /// The underlying disk.
    pub fn disk(&self) -> &'d Disk {
        self.disk
    }

    /// Total frame capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Replacement policy the cache was built with.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    #[inline]
    fn shard(&self, id: PageId) -> &Shard {
        // Stripe by page id: consecutive pages (the common sequential
        // access pattern) hit different shard locks.
        &self.shards[(id.0 % self.shards.len() as u64) as usize]
    }

    /// Reads a page through the cache, returning a zero-copy pin guard.
    pub fn read(&self, id: PageId) -> PageRef {
        self.read_tracked(id).0
    }

    /// [`read`](Self::read) plus which tier answered — for handles that
    /// keep per-worker counters over a shared cache.
    pub fn read_tracked(&self, id: PageId) -> (PageRef, ReadOutcome) {
        let shard = self.shard(id);
        let mut guard = shard.lock();
        if guard.ring.contains(id.0) {
            let f = guard.ring.get(id.0).expect("resident page");
            let buf = Arc::clone(&f.buf);
            let outcome = if f.prefetched {
                f.prefetched = false;
                ReadOutcome::PrefetchHit
            } else {
                ReadOutcome::Hit
            };
            match outcome {
                ReadOutcome::PrefetchHit => guard.counters.prefetch_hits += 1,
                _ => guard.counters.hits += 1,
            }
            return (PageRef { buf }, outcome);
        }
        guard.counters.misses += 1;
        let f = Self::load_frame(self.disk, &mut guard, id);
        (
            PageRef {
                buf: Arc::clone(&f.buf),
            },
            ReadOutcome::Miss,
        )
    }

    /// Reads and decodes an element page through both tiers, returning the
    /// shared decoded records.
    pub fn read_decoded(&self, codec: &ElementPageCodec, id: PageId) -> Arc<[SpatialElement]> {
        self.read_decoded_tracked(codec, id).0
    }

    /// [`read_decoded`](Self::read_decoded) plus which tier answered.
    pub fn read_decoded_tracked(
        &self,
        codec: &ElementPageCodec,
        id: PageId,
    ) -> (Arc<[SpatialElement]>, DecodedOutcome) {
        let shard = self.shard(id);
        let mut guard = shard.lock();
        if let Some(i) = guard.ring.find(id.0) {
            let was_prefetched = {
                let f = guard.ring.payload_mut(i);
                let was = f.prefetched;
                f.prefetched = false;
                was
            };
            if was_prefetched {
                guard.counters.prefetch_hits += 1;
            } else {
                guard.counters.hits += 1;
            }
            let hit_decoded = guard.ring.payload_mut(i).decoded.as_ref().map(Arc::clone);
            if let Some(decoded) = hit_decoded {
                guard.counters.decoded_hits += 1;
                return (decoded, DecodedOutcome::Decoded);
            }
            guard.counters.decoded_misses += 1;
            let f = guard.ring.payload_mut(i);
            let decoded: Arc<[SpatialElement]> = codec.decode(&f.buf).into();
            f.decoded = Some(Arc::clone(&decoded));
            let outcome = if was_prefetched {
                DecodedOutcome::PrefetchedPage
            } else {
                DecodedOutcome::Page
            };
            return (decoded, outcome);
        }
        guard.counters.misses += 1;
        guard.counters.decoded_misses += 1;
        let f = Self::load_frame(self.disk, &mut guard, id);
        let decoded: Arc<[SpatialElement]> = codec.decode(&f.buf).into();
        f.decoded = Some(Arc::clone(&decoded));
        (decoded, DecodedOutcome::Miss)
    }

    /// Miss path: registers `id` in the ring (evicting/recycling under the
    /// shard lock) and fills the frame's buffer from disk.
    fn load_frame<'r>(disk: &Disk, inner: &'r mut ShardInner, id: PageId) -> &'r mut SharedFrame {
        let page_size = disk.page_size();
        let ShardInner { ring, counters } = inner;
        let slot = ring.insert(
            id.0,
            AdmitClass::Demand,
            // A frame is evictable only while no PageRef pins its buffer
            // (clones only happen under this shard's lock, so the count is
            // stable for the duration of the sweep) and its bytes are on
            // disk — evicting a dirty frame would lose the write.
            |f| Arc::strong_count(&f.buf) == 1 && !f.dirty,
            || SharedFrame {
                buf: Arc::new(vec![0u8; page_size]),
                decoded: None,
                prefetched: false,
                dirty: false,
                page_lsn: 0,
            },
        );
        if slot.evicted.is_some() {
            counters.evictions += 1;
            counters.recycled_frames += 1;
            if slot.payload.prefetched {
                counters.prefetch_unused += 1;
            }
        }
        if slot.fresh {
            counters.fresh_allocs += 1;
        }
        let f = slot.payload;
        f.decoded = None;
        f.prefetched = false;
        f.dirty = false;
        f.page_lsn = 0;
        let buf =
            Arc::get_mut(&mut f.buf).expect("unpinned frame buffer is uniquely owned under lock");
        disk.read_page(id, buf);
        f
    }

    /// Reads `id` from disk **outside** the shard lock (into `scratch`,
    /// which is resized to one page and reused across calls) and lands the
    /// bytes into a recycled victim frame, marked as prefetched. A page
    /// already resident — or landed by a racing demand read while the disk
    /// read was in flight — is left untouched.
    ///
    /// This is the I/O-thread entry point of the prefetch pipeline: the
    /// device wait (real or injected) happens off-lock, so `io_depth`
    /// threads overlap their latencies like tagged commands on a device
    /// queue, while demand reads keep their read-once-per-residency
    /// guarantee.
    pub fn prefetch_page(&self, id: PageId, scratch: &mut Vec<u8>) {
        let page_size = self.disk.page_size();
        let shard = self.shard(id);
        if shard.lock().ring.contains(id.0) {
            return;
        }
        scratch.resize(page_size, 0);
        self.disk.read_page(id, scratch);
        let mut guard = shard.lock();
        if guard.ring.contains(id.0) {
            // A demand read landed the page while ours was in flight; its
            // fill wins and our bytes are discarded (identical content —
            // the disk is immutable during serves).
            return;
        }
        let ShardInner { ring, counters } = &mut *guard;
        let slot = ring.insert(
            id.0,
            // A prefetch landing is a scan hint: under 2Q the page goes
            // probationary and never consults or feeds the ghost queue,
            // so readahead streams cannot flush the protected hot set.
            AdmitClass::Scan,
            |f| Arc::strong_count(&f.buf) == 1 && !f.dirty,
            || SharedFrame {
                buf: Arc::new(vec![0u8; page_size]),
                decoded: None,
                prefetched: false,
                dirty: false,
                page_lsn: 0,
            },
        );
        if slot.evicted.is_some() {
            counters.evictions += 1;
            counters.recycled_frames += 1;
            if slot.payload.prefetched {
                counters.prefetch_unused += 1;
            }
        }
        if slot.fresh {
            counters.fresh_allocs += 1;
        }
        let f = slot.payload;
        f.decoded = None;
        f.prefetched = true;
        f.dirty = false;
        f.page_lsn = 0;
        Arc::get_mut(&mut f.buf)
            .expect("unpinned frame buffer is uniquely owned under lock")
            .copy_from_slice(scratch);
        counters.prefetch_issued += 1;
    }

    /// Installs new bytes for page `id` into the cache's dirty tier
    /// without touching the disk. `bytes` must not exceed the page size;
    /// shorter data is zero-padded.
    ///
    /// `lsn` is the WAL record that logged these bytes; the frame stays
    /// dirty (never evicted, never written back) until a
    /// [`flush_dirty`](Self::flush_dirty) call whose durable LSN covers
    /// it. Writers using no log pass `lsn = 0`, which every flush covers.
    ///
    /// Concurrent readers are never torn: a pinned frame's buffer is not
    /// mutated in place — the frame's `Arc` is *replaced*, so live
    /// [`PageRef`]s keep the complete pre-write snapshot while new reads
    /// see the complete new bytes.
    pub fn write_page(&self, id: PageId, bytes: &[u8], lsn: u64) {
        let page_size = self.disk.page_size();
        assert!(
            bytes.len() <= page_size,
            "write of {} bytes exceeds page size {}",
            bytes.len(),
            page_size
        );
        let shard = self.shard(id);
        let mut guard = shard.lock();
        let ShardInner { ring, counters } = &mut *guard;
        let f = match ring.get(id.0) {
            Some(f) => f,
            None => {
                // Not resident: install a fresh dirty frame. No disk read —
                // the caller provides the full new page image.
                let slot = ring.insert(
                    id.0,
                    AdmitClass::Demand,
                    |f| Arc::strong_count(&f.buf) == 1 && !f.dirty,
                    || SharedFrame {
                        buf: Arc::new(vec![0u8; page_size]),
                        decoded: None,
                        prefetched: false,
                        dirty: false,
                        page_lsn: 0,
                    },
                );
                if slot.evicted.is_some() {
                    counters.evictions += 1;
                    counters.recycled_frames += 1;
                    if slot.payload.prefetched {
                        counters.prefetch_unused += 1;
                    }
                }
                if slot.fresh {
                    counters.fresh_allocs += 1;
                }
                slot.payload
            }
        };
        match Arc::get_mut(&mut f.buf) {
            Some(buf) => {
                buf[..bytes.len()].copy_from_slice(bytes);
                buf[bytes.len()..].fill(0);
            }
            None => {
                // Pinned by live readers: replace the Arc so their
                // snapshot stays intact.
                let mut fresh = vec![0u8; page_size];
                fresh[..bytes.len()].copy_from_slice(bytes);
                f.buf = Arc::new(fresh);
            }
        }
        f.decoded = None;
        f.prefetched = false;
        f.dirty = true;
        f.page_lsn = lsn;
        counters.dirty_installs += 1;
    }

    /// Writes back every dirty frame whose `page_lsn` is at most
    /// `durable_lsn` (the WAL-before-data gate) and marks it clean,
    /// stopping early once `max_pages` frames were flushed. Returns
    /// `(flushed, retained)`: retained frames are dirty pages the gate or
    /// the page budget kept in memory.
    ///
    /// Callers must only flush state whose transactions have committed
    /// (the cache has no undo path — this is a redo-only, no-steal
    /// design); the mutable index layers flush at batch boundaries.
    pub fn flush_dirty_up_to(&self, durable_lsn: u64, max_pages: usize) -> (usize, usize) {
        let mut flushed = 0usize;
        let mut retained = 0usize;
        for shard in self.shards.iter() {
            let mut guard = shard.inner.lock();
            let ShardInner { ring, counters } = &mut *guard;
            for (page, f) in ring.iter_mut() {
                if !f.dirty {
                    continue;
                }
                if f.page_lsn > durable_lsn || flushed >= max_pages {
                    retained += 1;
                    continue;
                }
                self.disk.write_page(PageId(page), &f.buf);
                f.dirty = false;
                counters.flushed_pages += 1;
                flushed += 1;
            }
        }
        (flushed, retained)
    }

    /// [`flush_dirty_up_to`](Self::flush_dirty_up_to) with no page budget.
    pub fn flush_dirty(&self, durable_lsn: u64) -> (usize, usize) {
        self.flush_dirty_up_to(durable_lsn, usize::MAX)
    }

    /// Number of dirty (unflushed) frames currently resident.
    pub fn dirty_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let mut guard = s.inner.lock();
                guard.ring.iter_mut().filter(|(_, f)| f.dirty).count()
            })
            .sum()
    }

    /// Aggregates all shard counters into one snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats {
            shards: self.shards.len(),
            capacity: self.capacity,
            policy: self.policy,
            ..CacheStats::default()
        };
        for shard in self.shards.iter() {
            s.lock_acquisitions += shard.acquisitions.load(Ordering::Relaxed);
            s.lock_contended += shard.contended.load(Ordering::Relaxed);
            let inner = shard.inner.lock();
            let c = &inner.counters;
            s.hits += c.hits;
            s.misses += c.misses;
            s.decoded_hits += c.decoded_hits;
            s.decoded_misses += c.decoded_misses;
            s.evictions += c.evictions;
            s.recycled_frames += c.recycled_frames;
            s.fresh_allocs += c.fresh_allocs;
            s.prefetch_issued += c.prefetch_issued;
            s.prefetch_hits += c.prefetch_hits;
            s.prefetch_unused += c.prefetch_unused;
            s.dirty_installs += c.dirty_installs;
            s.flushed_pages += c.flushed_pages;
            let q = inner.ring.twoq_counters();
            s.twoq_ghost_promotions += q.ghost_promotions;
            s.twoq_reuse_promotions += q.reuse_promotions;
            s.twoq_scan_admissions += q.scan_admissions;
            s.twoq_probation_evictions += q.probation_evictions;
            s.twoq_protected_evictions += q.protected_evictions;
        }
        s
    }

    /// Sweeps every shard for frames the prefetcher landed that no demand
    /// read ever touched, clearing their marks and folding them into
    /// [`CacheStats::prefetch_unused`]. Returns the number reclaimed.
    ///
    /// The eviction path only notices an unused prefetch when the frame is
    /// recycled; pages that stay resident to the end of a run would
    /// otherwise vanish from the accounting. Run-level reporters (the join
    /// path) call this once before snapshotting stats so a mis-sized
    /// readahead window is visible even when the cache never filled.
    pub fn reclaim_unused_prefetch(&self) -> u64 {
        let mut reclaimed = 0u64;
        for shard in self.shards.iter() {
            let mut guard = shard.inner.lock();
            let ShardInner { ring, counters } = &mut *guard;
            for (_, f) in ring.iter_mut() {
                if f.prefetched {
                    f.prefetched = false;
                    counters.prefetch_unused += 1;
                    reclaimed += 1;
                }
            }
        }
        reclaimed
    }

    /// Drops every *clean* cached page and decoded entry (counters keep
    /// running, matching [`crate::BufferPool::clear`]). Dirty frames are
    /// retained — dropping them would lose writes that only exist in the
    /// cache; flush first if a full clear is wanted. Live [`PageRef`]s
    /// stay valid — their buffers are kept alive by the guards themselves.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.inner.lock().ring.retain(|f| f.dirty);
        }
    }

    /// Zeroes all counters (e.g. between comparable measurement phases).
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.acquisitions.store(0, Ordering::Relaxed);
            shard.contended.store(0, Ordering::Relaxed);
            let mut inner = shard.inner.lock();
            inner.counters = ShardCounters::default();
        }
    }
}

impl std::fmt::Debug for SharedPageCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPageCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskModel;

    fn disk_with_pages(n: u64, page_size: usize) -> Disk {
        let d = Disk::in_memory(page_size).with_model(DiskModel::free());
        let first = d.allocate_contiguous(n);
        for i in 0..n {
            d.write_page(PageId(first.0 + i), &[i as u8]);
        }
        d.reset_stats();
        d
    }

    #[test]
    fn hit_avoids_disk_and_is_zero_copy() {
        let d = disk_with_pages(4, 32);
        let cache = SharedPageCache::with_shards(&d, 4, 2);
        let a = cache.read(PageId(1));
        let b = cache.read(PageId(1));
        assert_eq!(a[0], 1);
        // Both guards pin the same underlying buffer: zero-copy.
        assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()));
        assert_eq!(d.stats().reads(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.hit_fraction() > 0.4);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let d = disk_with_pages(16, 32);
        // One shard, two frames: heavy pressure.
        let cache = SharedPageCache::with_shards(&d, 2, 1);
        let pinned = cache.read(PageId(3));
        for i in 0..16u64 {
            let r = cache.read(PageId(i));
            assert_eq!(r[0], i as u8);
        }
        // The pin held throughout: its bytes never changed under it.
        assert_eq!(pinned[0], 3);
        let s = cache.stats();
        assert!(s.evictions > 0, "pressure must evict: {s:?}");
        assert!(s.recycled_frames > 0, "misses must recycle: {s:?}");
    }

    #[test]
    fn steady_state_misses_recycle_not_allocate() {
        let d = disk_with_pages(8, 32);
        let cache = SharedPageCache::with_shards(&d, 2, 1);
        for round in 0..4 {
            for i in 0..8u64 {
                assert_eq!(cache.read(PageId(i))[0], i as u8, "round {round}");
            }
        }
        let s = cache.stats();
        // Two fills for the two frames; every later miss recycled.
        assert_eq!(s.fresh_allocs, 2);
        assert_eq!(s.misses, 32);
        assert_eq!(s.recycled_frames, 30);
    }

    #[test]
    fn decoded_tier_skips_the_codec() {
        use tfm_geom::{Aabb, Point3};
        let codec = ElementPageCodec::new(512);
        let d = Disk::in_memory(512).with_model(DiskModel::free());
        let p = d.allocate();
        let elems = vec![
            SpatialElement::new(
                7,
                Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
            ),
            SpatialElement::new(
                9,
                Aabb::new(Point3::new(2.0, 2.0, 2.0), Point3::new(3.0, 3.0, 3.0)),
            ),
        ];
        d.write_page(p, &codec.encode(&elems));
        d.reset_stats();

        let cache = SharedPageCache::with_shards(&d, 4, 1);
        let (first, o1) = cache.read_decoded_tracked(&codec, p);
        assert_eq!(o1, DecodedOutcome::Miss);
        assert_eq!(first.as_ref(), elems.as_slice());
        let (second, o2) = cache.read_decoded_tracked(&codec, p);
        assert_eq!(o2, DecodedOutcome::Decoded);
        // Same Arc: the decode ran exactly once.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(d.stats().reads(), 1);
        let s = cache.stats();
        assert_eq!((s.decoded_hits, s.decoded_misses), (1, 1));

        // A byte-level read of the same page hits the page tier.
        let (_, outcome) = cache.read_tracked(p);
        assert_eq!(outcome, ReadOutcome::Hit);
    }

    #[test]
    fn decoded_entries_die_with_their_frame() {
        use tfm_geom::{Aabb, Point3};
        let codec = ElementPageCodec::new(512);
        let d = Disk::in_memory(512).with_model(DiskModel::free());
        let first = d.allocate_contiguous(4);
        for i in 0..4u64 {
            let e = SpatialElement::new(
                i,
                Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
            );
            d.write_page(PageId(first.0 + i), &codec.encode(&[e]));
        }
        let cache = SharedPageCache::with_shards(&d, 1, 1);
        assert_eq!(cache.read_decoded(&codec, PageId(0))[0].id, 0);
        // Evict page 0, then return to it: the decode must run again.
        assert_eq!(cache.read_decoded(&codec, PageId(1))[0].id, 1);
        let (_, outcome) = cache.read_decoded_tracked(&codec, PageId(0));
        assert_eq!(outcome, DecodedOutcome::Miss);
    }

    #[test]
    fn clear_drops_residency_but_guards_stay_valid() {
        let d = disk_with_pages(2, 32);
        let cache = SharedPageCache::with_shards(&d, 4, 2);
        let guard = cache.read(PageId(1));
        cache.clear();
        assert_eq!(guard[0], 1, "live guards outlive clear()");
        cache.read(PageId(1));
        assert_eq!(d.stats().reads(), 2, "clear() forces a re-read");
    }

    #[test]
    fn stats_reset_and_delta() {
        let d = disk_with_pages(4, 32);
        let cache = SharedPageCache::new(&d, 16);
        cache.read(PageId(0));
        cache.read(PageId(0));
        let before = cache.stats();
        cache.read(PageId(1));
        let delta = cache.stats().delta_since(&before);
        assert_eq!((delta.hits, delta.misses), (0, 1));
        assert_eq!(delta.shards, DEFAULT_CACHE_SHARDS);
        cache.reset_stats();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.lock_acquisitions), (0, 0, 0));
    }

    #[test]
    fn concurrent_readers_agree_with_the_disk() {
        let d = disk_with_pages(64, 32);
        let cache = SharedPageCache::with_shards(&d, 8, 4);
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    for round in 0..4u64 {
                        for i in 0..64u64 {
                            let p = (i * 7 + t + round) % 64;
                            let r = cache.read(PageId(p));
                            assert_eq!(r[0], p as u8);
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 4 * 64);
        assert_eq!(s.misses, d.stats().reads());
    }

    #[test]
    fn prefetched_pages_count_as_prefetch_hits_not_cache_hits() {
        let d = disk_with_pages(4, 32);
        let cache = SharedPageCache::with_shards(&d, 4, 2);
        let mut scratch = Vec::new();
        cache.prefetch_page(PageId(1), &mut scratch);
        assert_eq!(d.stats().reads(), 1, "prefetch reads the disk");
        // First demand read: served by the prefetched frame, no disk read,
        // but neither a hit nor a miss.
        let (r, outcome) = cache.read_tracked(PageId(1));
        assert_eq!(outcome, ReadOutcome::PrefetchHit);
        assert_eq!(r[0], 1);
        assert_eq!(d.stats().reads(), 1);
        // Second demand read is a plain hit: the mark cleared.
        let (_, outcome) = cache.read_tracked(PageId(1));
        assert_eq!(outcome, ReadOutcome::Hit);
        let s = cache.stats();
        assert_eq!(s.prefetch_issued, 1);
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!((s.hits, s.misses), (1, 0), "prefetch stays out of hit/miss");
    }

    #[test]
    fn prefetch_of_resident_page_is_a_no_op() {
        let d = disk_with_pages(2, 32);
        let cache = SharedPageCache::with_shards(&d, 4, 1);
        cache.read(PageId(0));
        let mut scratch = Vec::new();
        cache.prefetch_page(PageId(0), &mut scratch);
        assert_eq!(d.stats().reads(), 1, "resident page is not re-read");
        assert_eq!(cache.stats().prefetch_issued, 0);
        // The frame must not be re-marked: the next read is a plain hit.
        let (_, outcome) = cache.read_tracked(PageId(0));
        assert_eq!(outcome, ReadOutcome::Hit);
    }

    #[test]
    fn evicted_unused_prefetches_are_counted() {
        let d = disk_with_pages(8, 32);
        // One shard, two frames: prefetches evict each other.
        let cache = SharedPageCache::with_shards(&d, 2, 1);
        let mut scratch = Vec::new();
        for i in 0..8u64 {
            cache.prefetch_page(PageId(i), &mut scratch);
        }
        let s = cache.stats();
        assert_eq!(s.prefetch_issued, 8);
        assert_eq!(s.prefetch_unused, 6, "6 of 8 evicted before any use");
        // The two survivors serve their first reads as prefetch hits.
        let (_, o) = cache.read_tracked(PageId(7));
        assert_eq!(o, ReadOutcome::PrefetchHit);
    }

    #[test]
    fn prefetched_element_pages_decode_like_demand_reads() {
        use tfm_geom::{Aabb, Point3};
        let codec = ElementPageCodec::new(512);
        let d = Disk::in_memory(512).with_model(DiskModel::free());
        let p = d.allocate();
        let elems = vec![SpatialElement::new(
            5,
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
        )];
        d.write_page(p, &codec.encode(&elems));
        d.reset_stats();
        let cache = SharedPageCache::with_shards(&d, 4, 1);
        let mut scratch = Vec::new();
        cache.prefetch_page(p, &mut scratch);
        let (decoded, outcome) = cache.read_decoded_tracked(&codec, p);
        assert_eq!(outcome, DecodedOutcome::PrefetchedPage);
        assert_eq!(decoded.as_ref(), elems.as_slice());
        assert_eq!(d.stats().reads(), 1, "the prefetch was the only read");
        let s = cache.stats();
        assert_eq!((s.prefetch_hits, s.hits, s.misses), (1, 0, 0));
        // Decoded tier now primed: next decoded read hits it outright.
        let (_, outcome) = cache.read_decoded_tracked(&codec, p);
        assert_eq!(outcome, DecodedOutcome::Decoded);
    }

    #[test]
    fn concurrent_prefetch_and_demand_reads_agree() {
        let d = disk_with_pages(64, 32);
        let cache = SharedPageCache::with_shards(&d, 32, 4);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let cache = &cache;
                s.spawn(move || {
                    let mut scratch = Vec::new();
                    for i in 0..64u64 {
                        cache.prefetch_page(PageId((i + t * 31) % 64), &mut scratch);
                    }
                });
            }
            for _ in 0..2 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..64u64 {
                        assert_eq!(cache.read(PageId(i))[0], i as u8);
                    }
                });
            }
        });
        let s = cache.stats();
        // Every demand read is accounted exactly once across the three
        // disjoint counters.
        assert_eq!(s.hits + s.misses + s.prefetch_hits, 2 * 64);
    }

    #[test]
    fn shards_for_threads_is_sane() {
        assert_eq!(SharedPageCache::shards_for_threads(0), 2);
        assert_eq!(SharedPageCache::shards_for_threads(1), 2);
        assert_eq!(SharedPageCache::shards_for_threads(4), 8);
        assert_eq!(SharedPageCache::shards_for_threads(1000), 64);
    }

    #[test]
    fn cache_writes_are_visible_before_any_flush() {
        let d = disk_with_pages(4, 32);
        let cache = SharedPageCache::with_shards(&d, 4, 2);
        cache.write_page(PageId(1), &[0xAB; 32], 7);
        assert_eq!(cache.read(PageId(1))[0], 0xAB, "read sees the cache write");
        // The disk still holds the old bytes: nothing was flushed.
        assert_eq!(d.read_page_vec(PageId(1))[0], 1);
        assert_eq!(cache.dirty_pages(), 1);
        let s = cache.stats();
        assert_eq!((s.dirty_installs, s.flushed_pages), (1, 0));
    }

    #[test]
    fn flush_gate_holds_back_frames_past_the_durable_lsn() {
        let d = disk_with_pages(4, 32);
        let cache = SharedPageCache::with_shards(&d, 4, 2);
        cache.write_page(PageId(0), &[0x11; 32], 5);
        cache.write_page(PageId(1), &[0x22; 32], 9);
        // Only the LSN-5 write may reach the disk at durable LSN 6.
        let (flushed, retained) = cache.flush_dirty(6);
        assert_eq!((flushed, retained), (1, 1));
        assert_eq!(d.read_page_vec(PageId(0))[0], 0x11);
        assert_eq!(
            d.read_page_vec(PageId(1))[0],
            1,
            "gated write stays in cache"
        );
        // Once the log is durable past 9, the second frame flushes too.
        let (flushed, retained) = cache.flush_dirty(9);
        assert_eq!((flushed, retained), (1, 0));
        assert_eq!(d.read_page_vec(PageId(1))[0], 0x22);
        assert_eq!(cache.dirty_pages(), 0);
        assert!(cache.stats().flushed_pages == 2);
    }

    #[test]
    fn dirty_frames_survive_eviction_pressure_and_clear() {
        let d = disk_with_pages(16, 32);
        // One shard, two frames: heavy pressure.
        let cache = SharedPageCache::with_shards(&d, 2, 1);
        cache.write_page(PageId(3), &[0x33; 32], 1);
        for i in 0..16u64 {
            let _ = cache.read(PageId(i));
        }
        // The dirty frame was never evicted: its bytes are still the write.
        assert_eq!(cache.read(PageId(3))[0], 0x33);
        cache.clear();
        assert_eq!(cache.dirty_pages(), 1, "clear() keeps dirty frames");
        assert_eq!(cache.read(PageId(3))[0], 0x33);
        // After a covering flush the frame is clean and clear() drops it.
        cache.flush_dirty(u64::MAX);
        cache.clear();
        assert_eq!(cache.dirty_pages(), 0);
        assert_eq!(d.read_page_vec(PageId(3))[0], 0x33);
    }

    #[test]
    fn pinned_readers_keep_their_snapshot_across_writes() {
        let d = disk_with_pages(4, 32);
        let cache = SharedPageCache::with_shards(&d, 4, 2);
        let before = cache.read(PageId(2));
        assert_eq!(before[0], 2);
        cache.write_page(PageId(2), &[0x77; 32], 3);
        // The pinned guard still sees the complete pre-write page while
        // new readers see the complete new page: no torn reads.
        assert_eq!(before[0], 2);
        assert_eq!(cache.read(PageId(2))[0], 0x77);
    }

    #[test]
    fn write_invalidates_the_decoded_tier() {
        use tfm_geom::{Aabb, Point3};
        let codec = ElementPageCodec::new(512);
        let d = Disk::in_memory(512).with_model(DiskModel::free());
        let p = d.allocate();
        let one = |id| {
            SpatialElement::new(
                id,
                Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
            )
        };
        d.write_page(p, &codec.encode(&[one(7)]));
        let cache = SharedPageCache::with_shards(&d, 4, 1);
        assert_eq!(cache.read_decoded(&codec, p)[0].id, 7);
        cache.write_page(p, &codec.encode(&[one(8), one(9)]), 1);
        let decoded = cache.read_decoded(&codec, p);
        assert_eq!(decoded.len(), 2, "stale decode was dropped");
        assert_eq!(decoded[0].id, 8);
    }

    fn twoq_cache<'d>(d: &'d Disk, capacity: usize, shards: usize) -> SharedPageCache<'d> {
        SharedPageCache::with_policy(d, capacity, shards, CachePolicy::TwoQ)
    }

    #[test]
    fn twoq_scan_does_not_evict_protected_pages() {
        let d = disk_with_pages(128, 32);
        // One shard, eight frames, scan-resistant policy.
        let cache = twoq_cache(&d, 8, 1);
        // Two demand reads each: pages 0 and 1 earn the protected tier.
        for p in [0u64, 1, 0, 1] {
            cache.read(PageId(p));
        }
        // A prefetch scan four times the cache size churns through.
        let mut scratch = Vec::new();
        for p in 32..64u64 {
            cache.prefetch_page(PageId(p), &mut scratch);
        }
        let before = d.stats().reads();
        assert_eq!(cache.read(PageId(0))[0], 0);
        assert_eq!(cache.read(PageId(1))[0], 1);
        assert_eq!(d.stats().reads(), before, "hot set must survive the scan");
        let s = cache.stats();
        assert_eq!(s.policy, CachePolicy::TwoQ);
        assert_eq!(s.twoq_reuse_promotions, 2);
        assert_eq!(s.twoq_protected_evictions, 0);
        assert_eq!(s.twoq_scan_admissions, 32);
        assert!(s.twoq_probation_evictions > 0, "the scan churned A1in");
    }

    #[test]
    fn twoq_ghost_queue_promotes_refaulted_pages() {
        let d = disk_with_pages(64, 32);
        let cache = twoq_cache(&d, 4, 1);
        // One demand read, then push the page out through the FIFO.
        cache.read(PageId(7));
        for p in 10..14u64 {
            cache.read(PageId(p));
        }
        // The re-fault is remembered by the ghost queue: straight to the
        // protected tier, where a follow-up scan cannot displace it.
        cache.read(PageId(7));
        assert_eq!(cache.stats().twoq_ghost_promotions, 1);
        let mut scratch = Vec::new();
        for p in 32..48u64 {
            cache.prefetch_page(PageId(p), &mut scratch);
        }
        let before = d.stats().reads();
        assert_eq!(cache.read(PageId(7))[0], 7);
        assert_eq!(d.stats().reads(), before);
    }

    #[test]
    fn twoq_pinned_pages_survive_eviction_pressure() {
        let d = disk_with_pages(16, 32);
        // One shard, two frames: heavy pressure (mirrors the CLOCK test).
        let cache = twoq_cache(&d, 2, 1);
        let pinned = cache.read(PageId(3));
        let mut scratch = Vec::new();
        for i in 0..16u64 {
            let r = cache.read(PageId(i));
            assert_eq!(r[0], i as u8);
            cache.prefetch_page(PageId((i + 5) % 16), &mut scratch);
        }
        // The pin held throughout both demand and scan fills.
        assert_eq!(pinned[0], 3);
        let s = cache.stats();
        assert!(s.evictions > 0, "pressure must evict: {s:?}");
    }

    #[test]
    fn twoq_results_match_clock_byte_for_byte() {
        let d = disk_with_pages(32, 32);
        let clock = SharedPageCache::with_shards(&d, 4, 2);
        let twoq = twoq_cache(&d, 4, 2);
        // Any interleaving of reads returns identical bytes under either
        // policy — replacement only changes which reads hit.
        for i in 0..96u64 {
            let p = PageId((i * 13 + i / 7) % 32);
            assert_eq!(clock.read(p)[0], twoq.read(p)[0]);
        }
    }

    #[test]
    fn reclaim_counts_resident_unused_prefetches() {
        let d = disk_with_pages(8, 32);
        let cache = SharedPageCache::with_shards(&d, 8, 2);
        let mut scratch = Vec::new();
        for i in 0..4u64 {
            cache.prefetch_page(PageId(i), &mut scratch);
        }
        // One of the four is consumed; the other three sit resident and
        // would escape the eviction-time accounting.
        let (_, o) = cache.read_tracked(PageId(0));
        assert_eq!(o, ReadOutcome::PrefetchHit);
        assert_eq!(cache.reclaim_unused_prefetch(), 3);
        let s = cache.stats();
        assert_eq!(s.prefetch_unused, 3);
        assert_eq!(s.prefetch_hits, 1);
        // Marks were cleared: a second sweep finds nothing and the pages
        // now read as plain hits.
        assert_eq!(cache.reclaim_unused_prefetch(), 0);
        let (_, o) = cache.read_tracked(PageId(1));
        assert_eq!(o, ReadOutcome::Hit);
    }

    #[test]
    fn flush_page_budget_limits_writeback() {
        let d = disk_with_pages(8, 32);
        let cache = SharedPageCache::with_shards(&d, 8, 2);
        for i in 0..6u64 {
            cache.write_page(PageId(i), &[0x40 + i as u8; 32], 1);
        }
        let (flushed, retained) = cache.flush_dirty_up_to(u64::MAX, 2);
        assert_eq!((flushed, retained), (2, 4));
        assert_eq!(cache.dirty_pages(), 4);
        let (flushed, _) = cache.flush_dirty(u64::MAX);
        assert_eq!(flushed, 4);
        for i in 0..6u64 {
            assert_eq!(d.read_page_vec(PageId(i))[0], 0x40 + i as u8);
        }
    }
}
