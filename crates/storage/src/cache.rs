//! The unified read path: one trait over private pools, the shared cache
//! and the raw disk.
//!
//! Index structures (the B+-tree, the R-tree, the TRANSFORMERS unit
//! reader) are generic over [`PageReads`] so one traversal implementation
//! serves every caching mode:
//!
//! * [`BufferPool`] — the classic private per-owner pool;
//! * [`CacheHandle`] — a per-worker *view* that is either a private pool
//!   or a thin handle onto the process-wide [`SharedPageCache`] (with its
//!   own hit/miss counters, so per-worker accounting survives sharing);
//! * `&Disk` — uncached direct reads, for one-shot metadata passes.
//!
//! Page bytes come back as a [`PageSlice`] (borrowed from a private pool,
//! pinned zero-copy from the shared cache, or owned from the raw disk) and
//! decoded element pages as an [`ElemSlice`] (scratch-decoded privately,
//! or the shared cache's cached `Arc<[SpatialElement]>`). Both deref to
//! slices, so call sites are caching-agnostic.

use crate::shared::{DecodedOutcome, ReadOutcome};
use crate::{BufferPool, Disk, ElementPageCodec, PageId, PageRef, SharedPageCache};
use std::ops::Deref;
use std::sync::Arc;
use tfm_geom::SpatialElement;

/// Per-handle cache counters (both tiers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Page-tier hits.
    pub hits: u64,
    /// Page-tier misses (disk page reads triggered by this handle).
    pub misses: u64,
    /// Decoded-tier hits (decode skipped).
    pub decoded_hits: u64,
    /// Decoded-tier misses (a decode ran for this handle's read).
    pub decoded_misses: u64,
    /// Reads served by a frame the prefetch pipeline landed — tracked
    /// apart from `hits`/`misses` so readahead cannot inflate
    /// [`hit_fraction`](PoolCounters::hit_fraction).
    pub prefetch_hits: u64,
}

impl PoolCounters {
    /// Page-tier hit fraction in `0.0..=1.0` (0 when idle).
    pub fn hit_fraction(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// One page's bytes, however the cache mode produced them.
pub enum PageSlice<'a> {
    /// Borrowed from a private pool frame.
    Borrowed(&'a [u8]),
    /// Pinned zero-copy in the shared cache.
    Pinned(PageRef),
    /// Freshly read from the disk (uncached mode).
    Owned(Vec<u8>),
}

impl Deref for PageSlice<'_> {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            PageSlice::Borrowed(s) => s,
            PageSlice::Pinned(r) => r,
            PageSlice::Owned(v) => v,
        }
    }
}

/// One element page's decoded records, however the cache mode produced
/// them.
pub enum ElemSlice<'a> {
    /// Decoded into the caller's scratch buffer (private/uncached modes).
    Borrowed(&'a [SpatialElement]),
    /// The shared cache's decoded-tier entry (no decode ran on a hit).
    Cached(Arc<[SpatialElement]>),
}

impl Deref for ElemSlice<'_> {
    type Target = [SpatialElement];

    #[inline]
    fn deref(&self) -> &[SpatialElement] {
        match self {
            ElemSlice::Borrowed(s) => s,
            ElemSlice::Cached(a) => a,
        }
    }
}

/// A source of cached page reads — the one abstraction every index
/// traversal reads pages through (see the module docs for the three
/// implementors and what each returns).
///
/// The contract: [`page`](PageReads::page) must return exactly the bytes
/// the underlying [`Disk`] holds for that id (caching may only change
/// *when* the disk is touched, never *what* comes back), and
/// [`counters`](PageReads::counters) must account every `page`/
/// [`elements`](PageReads::elements) call as either a hit or a miss so
/// per-worker accounting stays exact under sharing. Handles are `&mut
/// self` per owner: concurrency lives *inside* an implementation (the
/// shared cache's lock striping), never in the trait.
pub trait PageReads {
    /// Reads one page's bytes.
    fn page(&mut self, id: PageId) -> PageSlice<'_>;

    /// Reads and decodes one element page. Implementations without a
    /// decoded tier decode into `scratch`; the shared cache returns its
    /// cached records and leaves `scratch` untouched.
    fn elements<'s>(
        &'s mut self,
        codec: &ElementPageCodec,
        id: PageId,
        scratch: &'s mut Vec<SpatialElement>,
    ) -> ElemSlice<'s> {
        let page = self.page(id);
        codec.decode_into(&page, scratch);
        drop(page);
        ElemSlice::Borrowed(scratch)
    }

    /// This handle's cache counters (zeros for uncached modes).
    fn counters(&self) -> PoolCounters;
}

impl PageReads for BufferPool<'_> {
    fn page(&mut self, id: PageId) -> PageSlice<'_> {
        PageSlice::Borrowed(self.read(id))
    }

    fn counters(&self) -> PoolCounters {
        PoolCounters {
            hits: self.hits(),
            misses: self.misses(),
            ..PoolCounters::default()
        }
    }
}

/// Uncached direct reads; every access reaches the disk and allocates.
/// Meant for one-shot traversals (e.g. a single B+-tree lookup on a cold
/// path), not hot loops.
impl PageReads for &Disk {
    fn page(&mut self, id: PageId) -> PageSlice<'_> {
        PageSlice::Owned(self.read_page_vec(id))
    }

    fn counters(&self) -> PoolCounters {
        PoolCounters::default()
    }
}

/// A per-worker view over some cache: either a private [`BufferPool`] or
/// a counted handle onto a [`SharedPageCache`].
///
/// This is what rides inside `transformers::UnitReader`, the join's
/// per-side state and the serve sessions: workers construct their handle
/// once and the rest of the read path is mode-agnostic. The `Shared`
/// variant keeps **local** counters, so summing per-worker counters never
/// double-counts the global cache's totals.
pub enum CacheHandle<'c, 'd> {
    /// A private CLOCK pool owned by this handle.
    Private(BufferPool<'d>),
    /// A view onto the process-wide shared cache.
    Shared {
        /// The shared cache all handles read through.
        cache: &'c SharedPageCache<'d>,
        /// This handle's own hit/miss counters.
        counters: PoolCounters,
    },
}

impl<'c, 'd> CacheHandle<'c, 'd> {
    /// A handle owning a private pool of `pages` pages (clamped to ≥ 1).
    pub fn private(disk: &'d Disk, pages: usize) -> Self {
        CacheHandle::Private(BufferPool::new(disk, pages.max(1)))
    }

    /// A handle viewing the shared cache.
    pub fn shared(cache: &'c SharedPageCache<'d>) -> Self {
        CacheHandle::Shared {
            cache,
            counters: PoolCounters::default(),
        }
    }

    /// The disk behind this handle.
    pub fn disk(&self) -> &'d Disk {
        match self {
            CacheHandle::Private(pool) => pool.disk(),
            CacheHandle::Shared { cache, .. } => cache.disk(),
        }
    }

    /// True when this handle views the process-wide shared cache.
    pub fn is_shared(&self) -> bool {
        matches!(self, CacheHandle::Shared { .. })
    }
}

impl PageReads for CacheHandle<'_, '_> {
    fn page(&mut self, id: PageId) -> PageSlice<'_> {
        match self {
            CacheHandle::Private(pool) => PageSlice::Borrowed(pool.read(id)),
            CacheHandle::Shared { cache, counters } => {
                let (page, outcome) = cache.read_tracked(id);
                match outcome {
                    ReadOutcome::Hit => counters.hits += 1,
                    ReadOutcome::PrefetchHit => counters.prefetch_hits += 1,
                    ReadOutcome::Miss => counters.misses += 1,
                }
                PageSlice::Pinned(page)
            }
        }
    }

    fn elements<'s>(
        &'s mut self,
        codec: &ElementPageCodec,
        id: PageId,
        scratch: &'s mut Vec<SpatialElement>,
    ) -> ElemSlice<'s> {
        match self {
            CacheHandle::Private(pool) => {
                codec.decode_into(pool.read(id), scratch);
                ElemSlice::Borrowed(scratch)
            }
            CacheHandle::Shared { cache, counters } => {
                let (elems, outcome) = cache.read_decoded_tracked(codec, id);
                match outcome {
                    DecodedOutcome::Decoded => {
                        counters.hits += 1;
                        counters.decoded_hits += 1;
                    }
                    DecodedOutcome::Page => {
                        counters.hits += 1;
                        counters.decoded_misses += 1;
                    }
                    DecodedOutcome::PrefetchedPage => {
                        counters.prefetch_hits += 1;
                        counters.decoded_misses += 1;
                    }
                    DecodedOutcome::Miss => {
                        counters.misses += 1;
                        counters.decoded_misses += 1;
                    }
                }
                ElemSlice::Cached(elems)
            }
        }
    }

    fn counters(&self) -> PoolCounters {
        match self {
            CacheHandle::Private(pool) => PageReads::counters(pool),
            CacheHandle::Shared { counters, .. } => *counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskModel;
    use tfm_geom::{Aabb, Point3};

    fn elem(id: u64) -> SpatialElement {
        let f = id as f64;
        SpatialElement::new(
            id,
            Aabb::new(Point3::new(f, f, f), Point3::new(f + 1.0, f + 1.0, f + 1.0)),
        )
    }

    fn element_disk(pages: u64) -> (Disk, ElementPageCodec) {
        let codec = ElementPageCodec::new(512);
        let d = Disk::in_memory(512).with_model(DiskModel::free());
        let first = d.allocate_contiguous(pages);
        for i in 0..pages {
            d.write_page(PageId(first.0 + i), &codec.encode(&[elem(i)]));
        }
        d.reset_stats();
        (d, codec)
    }

    /// Every mode must produce identical bytes and identical decoded
    /// elements for the same page.
    #[test]
    fn all_modes_agree() {
        let (d, codec) = element_disk(6);
        let shared = SharedPageCache::with_shards(&d, 4, 2);
        let mut handles: Vec<CacheHandle> =
            vec![CacheHandle::private(&d, 4), CacheHandle::shared(&shared)];
        let mut direct: &Disk = &d;
        let mut scratch = Vec::new();
        for p in 0..6u64 {
            let reference = direct.page(PageId(p)).to_vec();
            for h in handles.iter_mut() {
                assert_eq!(&*h.page(PageId(p)), reference.as_slice());
                let mut s = Vec::new();
                let e = h.elements(&codec, PageId(p), &mut s);
                assert_eq!(e[0], elem(p));
            }
            let e = direct.elements(&codec, PageId(p), &mut scratch);
            assert_eq!(e[0], elem(p));
        }
        // Handle-local counters: private counts its own pool, shared
        // counts only this handle's traffic.
        for h in &handles {
            let c = h.counters();
            assert_eq!(c.hits + c.misses, 12, "{c:?}");
        }
        assert_eq!(direct.counters(), PoolCounters::default());
    }

    #[test]
    fn shared_handles_count_locally_not_globally() {
        let (d, codec) = element_disk(3);
        let shared = SharedPageCache::with_shards(&d, 8, 2);
        let mut h1 = CacheHandle::shared(&shared);
        let mut h2 = CacheHandle::shared(&shared);
        let mut scratch = Vec::new();
        // h1 faults everything in; h2 rides its hits.
        for p in 0..3u64 {
            h1.elements(&codec, PageId(p), &mut scratch);
        }
        for p in 0..3u64 {
            h2.elements(&codec, PageId(p), &mut scratch);
        }
        assert_eq!(h1.counters().misses, 3);
        assert_eq!(h2.counters().misses, 0);
        assert_eq!(h2.counters().decoded_hits, 3);
        // Global totals equal the sum of the handle-local counters.
        let g = shared.stats();
        assert_eq!(g.misses, h1.counters().misses + h2.counters().misses);
        assert_eq!(g.hits, h1.counters().hits + h2.counters().hits);
        assert!(h2.is_shared() && h1.is_shared());
        assert!(!CacheHandle::private(&d, 1).is_shared());
    }

    #[test]
    fn prefetch_hits_stay_out_of_handle_hit_fractions() {
        let (d, codec) = element_disk(4);
        let shared = SharedPageCache::with_shards(&d, 8, 2);
        let mut scratch_page = Vec::new();
        for p in 0..4u64 {
            shared.prefetch_page(PageId(p), &mut scratch_page);
        }
        let mut h = CacheHandle::shared(&shared);
        let mut scratch = Vec::new();
        for p in 0..4u64 {
            h.elements(&codec, PageId(p), &mut scratch);
        }
        let c = h.counters();
        assert_eq!(c.prefetch_hits, 4);
        assert_eq!((c.hits, c.misses), (0, 0));
        assert_eq!(c.hit_fraction(), 0.0, "readahead must not look like hits");
        // Handle-local and global prefetch accounting agree.
        let g = shared.stats();
        assert_eq!(g.prefetch_hits, c.prefetch_hits);
        assert_eq!(g.prefetch_issued, 4);
    }
}
