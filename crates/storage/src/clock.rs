//! The CLOCK (second-chance) frame ring shared by [`crate::BufferPool`]
//! and the shards of [`crate::SharedPageCache`].
//!
//! A ring holds up to `capacity` frames, each caching one page. Lookups
//! set the frame's reference bit; eviction sweeps a clock hand over the
//! ring, clearing reference bits and evicting the first frame whose bit
//! is already clear. Compared to a strict LRU this drops the per-read
//! ordering churn (the old `BufferPool` maintained two `BTreeMap`s and a
//! fresh stamp on *every* read) for one boolean store, while approximating
//! the same recency behaviour.
//!
//! The ring is generic over the frame payload so the private pool can use
//! plain `Vec<u8>` buffers while the shared cache's shards use pinned
//! (`Arc`-counted) frames with a decoded-elements side slot. Payload-aware
//! eviction is expressed through the `can_evict` predicate of
//! [`ClockRing::insert`]: a frame whose payload is pinned is skipped like
//! a referenced frame. If every frame is pinned, the ring grows one
//! overflow frame beyond `capacity` instead of dead-locking; the ring
//! never shrinks, so the overflow is bounded by the peak number of
//! simultaneously pinned frames.

use std::collections::HashMap;

/// One cached page: its id, the CLOCK reference bit, and the payload.
#[derive(Debug)]
pub(crate) struct Frame<T> {
    pub page: u64,
    pub referenced: bool,
    pub payload: T,
}

/// Result of [`ClockRing::insert`]: the slot the caller must fill.
pub(crate) struct Inserted<'a, T> {
    /// The (recycled or fresh) payload now registered under the new page.
    pub payload: &'a mut T,
    /// The page previously held by this frame, when one was evicted.
    pub evicted: Option<u64>,
    /// True when a brand-new frame was allocated (below capacity, or
    /// overflow because every victim candidate was pinned).
    pub fresh: bool,
}

/// A fixed-capacity CLOCK page ring: `page id -> frame` with second-chance
/// eviction.
#[derive(Debug)]
pub(crate) struct ClockRing<T> {
    capacity: usize,
    frames: Vec<Frame<T>>,
    map: HashMap<u64, usize>,
    hand: usize,
}

impl<T> ClockRing<T> {
    /// Creates an empty ring of `capacity` frames.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one page");
        Self {
            capacity,
            frames: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::with_capacity(capacity.min(1024)),
            hand: 0,
        }
    }

    /// Number of resident pages.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if `page` is resident (does not touch the reference bit).
    pub fn contains(&self, page: u64) -> bool {
        self.map.contains_key(&page)
    }

    /// Looks up a resident page, setting its reference bit, and returns
    /// its frame index (for follow-up [`payload_mut`](Self::payload_mut)
    /// access without a second hash probe).
    pub fn find(&mut self, page: u64) -> Option<usize> {
        let &i = self.map.get(&page)?;
        self.frames[i].referenced = true;
        Some(i)
    }

    /// Looks up a resident page, setting its reference bit.
    pub fn get(&mut self, page: u64) -> Option<&mut T> {
        let i = self.find(page)?;
        Some(&mut self.frames[i].payload)
    }

    /// Payload of the frame at `index` (from [`find`](Self::find)).
    pub fn payload_mut(&mut self, index: usize) -> &mut T {
        &mut self.frames[index].payload
    }

    /// Registers `page` in the ring, evicting a victim if at capacity.
    ///
    /// `can_evict` vetoes victims whose payload is externally pinned;
    /// `fresh` allocates a payload for a brand-new frame. The caller must
    /// fill the returned payload with the new page's bytes.
    ///
    /// New frames enter with the reference bit **clear**, so a page read
    /// once and never again is the next eviction candidate — this is what
    /// preserves the scan-resistance the old LRU tests encode.
    pub fn insert(
        &mut self,
        page: u64,
        mut can_evict: impl FnMut(&T) -> bool,
        fresh: impl FnOnce() -> T,
    ) -> Inserted<'_, T> {
        debug_assert!(!self.map.contains_key(&page), "insert of resident page");
        if self.frames.len() < self.capacity {
            return self.push_fresh(page, fresh);
        }
        // Second-chance sweep: clear reference bits as the hand passes;
        // two full revolutions guarantee an unpinned frame is found if one
        // exists (first pass may only clear bits).
        let n = self.frames.len();
        let mut victim = None;
        for _ in 0..2 * n {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            let f = &mut self.frames[i];
            if !can_evict(&f.payload) {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            victim = Some(i);
            break;
        }
        match victim {
            Some(i) => {
                let evicted = self.frames[i].page;
                self.map.remove(&evicted);
                self.map.insert(page, i);
                let f = &mut self.frames[i];
                f.page = page;
                f.referenced = false;
                Inserted {
                    payload: &mut f.payload,
                    evicted: Some(evicted),
                    fresh: false,
                }
            }
            // Every frame is pinned: grow past capacity rather than spin.
            None => self.push_fresh(page, fresh),
        }
    }

    fn push_fresh(&mut self, page: u64, fresh: impl FnOnce() -> T) -> Inserted<'_, T> {
        let i = self.frames.len();
        self.frames.push(Frame {
            page,
            referenced: false,
            payload: fresh(),
        });
        self.map.insert(page, i);
        Inserted {
            payload: &mut self.frames[i].payload,
            evicted: None,
            fresh: true,
        }
    }

    /// Drops every resident page (frames and map; the hand resets).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }

    /// Iterates over every resident frame as `(page id, payload)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        self.frames.iter_mut().map(|f| (f.page, &mut f.payload))
    }

    /// Drops every frame for which `keep` returns false, rebuilding the
    /// page map. The clock hand resets. Used by caches that must survive a
    /// `clear()` without losing frames that hold unflushed (dirty) state.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        self.frames.retain(|f| keep(&f.payload));
        self.map.clear();
        for (i, f) in self.frames.iter().enumerate() {
            self.map.insert(f.page, i);
        }
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(capacity: usize) -> ClockRing<u64> {
        ClockRing::new(capacity)
    }

    #[test]
    fn second_chance_prefers_unreferenced_victims() {
        let mut r = ring(2);
        *r.insert(0, |_| true, || 0).payload = 10;
        *r.insert(1, |_| true, || 0).payload = 11;
        // Re-reference page 0; page 1 keeps a clear bit.
        assert_eq!(r.get(0), Some(&mut 10));
        let ins = r.insert(2, |_| true, || 0);
        assert_eq!(ins.evicted, Some(1), "unreferenced page is evicted first");
        assert!(!ins.fresh);
        assert!(r.contains(0));
        assert!(!r.contains(1));
    }

    #[test]
    fn pinned_frames_are_skipped_and_overflow_grows() {
        let mut r = ring(2);
        r.insert(0, |_| true, || 0);
        r.insert(1, |_| true, || 1);
        // Pretend both frames are pinned: insertion must grow the ring.
        let ins = r.insert(2, |_| false, || 2);
        assert!(ins.fresh);
        assert_eq!(ins.evicted, None);
        assert_eq!(r.len(), 3);
        // With pins released the overflow frame becomes a normal victim.
        let ins = r.insert(3, |_| true, || 3);
        assert!(!ins.fresh);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn clear_resets_residency() {
        let mut r = ring(2);
        r.insert(0, |_| true, || 7);
        r.clear();
        assert_eq!(r.len(), 0);
        assert!(!r.contains(0));
        assert!(r.get(0).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_panics() {
        let _ = ring(0);
    }
}
