//! The simulated disk device.

use crate::{DiskModel, IoStats, IoStatsSnapshot, PageId, DEFAULT_PAGE_SIZE};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which backend a [`Disk`] stores its pages in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskBackendKind {
    /// Pages live in a growable memory buffer (default; deterministic).
    Memory,
    /// Pages live in a real file (sanity-check backend).
    File,
}

enum Backend {
    Memory(RwLock<Vec<u8>>),
    File(File),
}

/// Jump from the head's expected position (`prev + 1`) to the accessed
/// page: `(forward, gap)`. Gap 0 = sequential. A cold head (no previous
/// access) is charged a full-span backward jump.
fn jump_from(prev: u64, id: u64) -> (bool, u64) {
    if prev == PageId::NONE {
        return (false, u64::MAX);
    }
    let expected = prev.wrapping_add(1);
    (id >= expected, expected.abs_diff(id))
}

/// A page-addressed storage device with I/O accounting.
///
/// All datasets and indexes of the reproduction live on `Disk`s. Every page
/// read/write is counted, classified sequential vs random, and costed with
/// the attached [`DiskModel`]; experiment harnesses read the resulting
/// [`IoStatsSnapshot`] to report the "I/O" component of join time exactly
/// like the paper's execution-time breakdowns (Fig. 11, 12, 14).
///
/// Reads take `&self` (statistics are internally synchronized), so index
/// structures can share a disk immutably during the join phase.
pub struct Disk {
    page_size: usize,
    backend: Backend,
    model: DiskModel,
    stats: IoStats,
    next_page: AtomicU64,
    last_read: AtomicU64,
    last_write: AtomicU64,
}

impl Disk {
    /// Creates an in-memory disk with the given page size.
    pub fn in_memory(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            backend: Backend::Memory(RwLock::new(Vec::new())),
            model: DiskModel::default(),
            stats: IoStats::default(),
            next_page: AtomicU64::new(0),
            last_read: AtomicU64::new(PageId::NONE),
            last_write: AtomicU64::new(PageId::NONE),
        }
    }

    /// Creates an in-memory disk with the default 8 KiB page size.
    pub fn default_in_memory() -> Self {
        Self::in_memory(DEFAULT_PAGE_SIZE)
    }

    /// Creates (or truncates) a file-backed disk at `path`.
    pub fn file<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            page_size,
            backend: Backend::File(file),
            model: DiskModel::default(),
            stats: IoStats::default(),
            next_page: AtomicU64::new(0),
            last_read: AtomicU64::new(PageId::NONE),
            last_write: AtomicU64::new(PageId::NONE),
        })
    }

    /// Replaces the cost model (builder style).
    pub fn with_model(mut self, model: DiskModel) -> Self {
        self.model = model;
        self
    }

    /// The configured page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The cost model in effect.
    #[inline]
    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Which backend this disk uses.
    pub fn backend_kind(&self) -> DiskBackendKind {
        match self.backend {
            Backend::Memory(_) => DiskBackendKind::Memory,
            Backend::File(_) => DiskBackendKind::File,
        }
    }

    /// Number of pages allocated so far.
    pub fn allocated_pages(&self) -> u64 {
        self.next_page.load(Ordering::Relaxed)
    }

    /// Allocates one fresh page and returns its id.
    pub fn allocate(&self) -> PageId {
        PageId(self.next_page.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates `n` physically contiguous pages and returns the first id.
    ///
    /// Contiguity matters: sequentially reading a contiguously written
    /// dataset is charged sequential-transfer cost only.
    pub fn allocate_contiguous(&self, n: u64) -> PageId {
        PageId(self.next_page.fetch_add(n, Ordering::Relaxed))
    }

    /// Writes `data` to page `id`. `data` must not exceed the page size;
    /// shorter data is zero-padded to a full page.
    ///
    /// # Panics
    /// Panics if `data.len() > page_size` or the page was never allocated.
    pub fn write_page(&self, id: PageId, data: &[u8]) {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        assert!(
            id.0 < self.allocated_pages(),
            "write to unallocated page {id}"
        );
        let prev = self.last_write.swap(id.0, Ordering::Relaxed);
        let (forward, gap) = jump_from(prev, id.0);
        self.stats
            .record_write(gap == 0, self.model.cost_for_jump(forward, gap));

        let offset = id.0 as usize * self.page_size;
        match &self.backend {
            Backend::Memory(buf) => {
                let mut buf = buf.write();
                if buf.len() < offset + self.page_size {
                    buf.resize(offset + self.page_size, 0);
                }
                buf[offset..offset + data.len()].copy_from_slice(data);
                // Zero the tail so re-writes of shorter data do not leak.
                buf[offset + data.len()..offset + self.page_size].fill(0);
            }
            Backend::File(file) => {
                let mut page = vec![0u8; self.page_size];
                page[..data.len()].copy_from_slice(data);
                file.write_all_at(&page, offset as u64)
                    .expect("file-backed page write failed");
            }
        }
    }

    /// Reads page `id` into `buf` (which must be exactly one page long).
    ///
    /// # Panics
    /// Panics if `buf.len() != page_size` or the page was never allocated.
    pub fn read_page(&self, id: PageId, buf: &mut [u8]) {
        assert_eq!(
            buf.len(),
            self.page_size,
            "read buffer must be exactly one page"
        );
        assert!(
            id.0 < self.allocated_pages(),
            "read of unallocated page {id}"
        );
        let prev = self.last_read.swap(id.0, Ordering::Relaxed);
        let (forward, gap) = jump_from(prev, id.0);
        self.stats
            .record_read(gap == 0, self.model.cost_for_jump(forward, gap));

        let offset = id.0 as usize * self.page_size;
        match &self.backend {
            Backend::Memory(mem) => {
                let mem = mem.read();
                if mem.len() >= offset + self.page_size {
                    buf.copy_from_slice(&mem[offset..offset + self.page_size]);
                } else {
                    // Allocated but never written: reads as zeros.
                    buf.fill(0);
                }
            }
            Backend::File(file) => {
                buf.fill(0);
                // The file may be shorter than the allocated extent if the
                // page was never written; tolerate a short read.
                let mut read = 0;
                while read < buf.len() {
                    match file.read_at(&mut buf[read..], (offset + read) as u64) {
                        Ok(0) => break,
                        Ok(n) => read += n,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("file-backed page read failed: {e}"),
                    }
                }
            }
        }
    }

    /// Convenience: reads page `id` into a fresh buffer.
    pub fn read_page_vec(&self, id: PageId) -> Vec<u8> {
        let mut buf = vec![0u8; self.page_size];
        self.read_page(id, &mut buf);
        buf
    }

    /// Point-in-time copy of the I/O counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the I/O counters (e.g. between the index and join phases) and
    /// forgets the head position, so the first access of the next phase is
    /// charged as random — matching the paper's cold-cache methodology.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.last_read.store(PageId::NONE, Ordering::Relaxed);
        self.last_write.store(PageId::NONE, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("page_size", &self.page_size)
            .field("backend", &self.backend_kind())
            .field("allocated_pages", &self.allocated_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_memory() {
        let d = Disk::in_memory(64);
        let p = d.allocate();
        d.write_page(p, b"hello");
        let buf = d.read_page_vec(p);
        assert_eq!(&buf[..5], b"hello");
        assert!(buf[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn sequential_vs_random_classification() {
        let d = Disk::in_memory(32).with_model(DiskModel::free());
        let p0 = d.allocate_contiguous(3);
        for i in 0..3 {
            d.write_page(PageId(p0.0 + i), &[i as u8]);
        }
        // First write is random (no previous head position), next two follow.
        let s = d.stats();
        assert_eq!(s.rand_writes, 1);
        assert_eq!(s.seq_writes, 2);

        let mut buf = vec![0u8; 32];
        d.read_page(PageId(2), &mut buf);
        d.read_page(PageId(0), &mut buf);
        d.read_page(PageId(1), &mut buf);
        d.read_page(PageId(2), &mut buf);
        let s = d.stats();
        // 2 is random, 0 is random (backwards), 1 and 2 are sequential.
        assert_eq!(s.rand_reads, 2);
        assert_eq!(s.seq_reads, 2);
    }

    #[test]
    fn sim_time_integrates_model() {
        let d = Disk::in_memory(32); // default SAS model
        let p = d.allocate();
        d.write_page(p, &[1]);
        let mut buf = vec![0u8; 32];
        d.read_page(p, &mut buf);
        let s = d.stats();
        let m = DiskModel::default();
        // Cold head: both accesses are charged a full-stroke positioning.
        assert_eq!(s.sim_write_time(), m.cost_for_gap(u64::MAX));
        assert_eq!(s.sim_read_time(), m.cost_for_gap(u64::MAX));
    }

    #[test]
    fn near_reads_cost_less_than_far_reads() {
        let d = Disk::in_memory(32);
        let _ = d.allocate_contiguous(200_000);
        let mut buf = vec![0u8; 32];
        d.read_page(PageId(0), &mut buf);
        d.reset_stats();
        d.read_page(PageId(0), &mut buf);
        d.read_page(PageId(5), &mut buf); // near seek
        let near = d.stats().sim_read_time();
        d.reset_stats();
        d.read_page(PageId(0), &mut buf);
        d.read_page(PageId(199_999), &mut buf); // far seek
        let far = d.stats().sim_read_time();
        assert!(far > near, "far {far:?} vs near {near:?}");
    }

    #[test]
    fn reset_stats_forgets_head() {
        let d = Disk::in_memory(32).with_model(DiskModel::free());
        let _ = d.allocate_contiguous(3);
        d.write_page(PageId(0), &[0]);
        d.write_page(PageId(1), &[1]);
        d.reset_stats();
        // Page 2 would be sequential after page 1, but the head position was
        // forgotten by reset_stats, so it must be classified random.
        d.write_page(PageId(2), &[2]);
        let s = d.stats();
        assert_eq!(s.rand_writes, 1);
        assert_eq!(s.seq_writes, 0);
    }

    #[test]
    fn unwritten_page_reads_zero() {
        let d = Disk::in_memory(16);
        let p = d.allocate();
        let buf = d.read_page_vec(p);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let d = Disk::in_memory(16);
        let mut buf = vec![0u8; 16];
        d.read_page(PageId(0), &mut buf);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let d = Disk::in_memory(4);
        let p = d.allocate();
        d.write_page(p, &[0; 5]);
    }

    #[test]
    fn file_backend_roundtrip() {
        let path = std::env::temp_dir().join(format!("tfm_disk_test_{}.bin", std::process::id()));
        let d = Disk::file(&path, 128).unwrap();
        let p0 = d.allocate_contiguous(4);
        d.write_page(PageId(p0.0 + 2), b"page two");
        d.write_page(PageId(p0.0), b"page zero");
        assert_eq!(&d.read_page_vec(PageId(p0.0 + 2))[..8], b"page two");
        assert_eq!(&d.read_page_vec(PageId(p0.0))[..9], b"page zero");
        // allocated-but-unwritten page reads zeros
        assert!(d.read_page_vec(PageId(p0.0 + 3)).iter().all(|&b| b == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn allocate_contiguous_returns_first_of_run() {
        let d = Disk::in_memory(16);
        let a = d.allocate_contiguous(10);
        let b = d.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(10));
        assert_eq!(d.allocated_pages(), 11);
    }
}
