//! The page-addressed storage device: accounting over a [`PageStore`].

use crate::store::{FileStore, MemStore, PageStore, StoreBackend};
use crate::{DiskModel, IoStats, IoStatsSnapshot, PageId, DEFAULT_PAGE_SIZE};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which backend a [`Disk`] stores its pages in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskBackendKind {
    /// Pages live in a growable memory buffer (default; deterministic).
    Memory,
    /// Pages live in a real file accessed with positional I/O.
    File,
}

/// Jump from the head's expected position (`prev + 1`) to the accessed
/// page: `(forward, gap)`. Gap 0 = sequential. A cold head (no previous
/// access) is charged a full-span backward jump.
fn jump_from(prev: u64, id: u64) -> (bool, u64) {
    if prev == PageId::NONE {
        return (false, u64::MAX);
    }
    let expected = prev.wrapping_add(1);
    (id >= expected, expected.abs_diff(id))
}

/// A page-addressed storage device with I/O accounting.
///
/// All datasets and indexes of the reproduction live on `Disk`s. Every page
/// read/write is counted, classified sequential vs random, and costed with
/// the attached [`DiskModel`]; experiment harnesses read the resulting
/// [`IoStatsSnapshot`] to report the "I/O" component of join time exactly
/// like the paper's execution-time breakdowns (Fig. 11, 12, 14).
///
/// The bytes themselves live in a [`PageStore`]: [`MemStore`] (default) or
/// a real-file [`FileStore`]. The accounting layer is identical for both,
/// so a run's page counts, sequential/random classification and simulated
/// device time do not depend on the backend — the model stays the
/// determinism oracle while the file backend adds real wall-clock I/O.
///
/// With [`with_read_latency`](Disk::with_read_latency) the disk *injects*
/// device latency: each read sleeps the model's cost for that access
/// scaled by the given factor. Benchmarks use this to measure queue-depth
/// effects in wall-clock time on hosts whose page cache would otherwise
/// hide the device entirely.
///
/// Reads take `&self` (statistics are internally synchronized), so index
/// structures can share a disk immutably during the join phase.
pub struct Disk {
    page_size: usize,
    store: Box<dyn PageStore>,
    model: DiskModel,
    /// Fraction of the modeled access cost slept on every read (0 = off).
    read_latency: f64,
    stats: IoStats,
    next_page: AtomicU64,
    last_read: AtomicU64,
    last_write: AtomicU64,
}

impl Disk {
    /// Creates a disk over an explicit [`PageStore`].
    pub fn with_store(store: Box<dyn PageStore>, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            store,
            model: DiskModel::default(),
            read_latency: 0.0,
            stats: IoStats::default(),
            next_page: AtomicU64::new(0),
            last_read: AtomicU64::new(PageId::NONE),
            last_write: AtomicU64::new(PageId::NONE),
        }
    }

    /// Creates an in-memory disk with the given page size.
    pub fn in_memory(page_size: usize) -> Self {
        Self::with_store(Box::new(MemStore::new()), page_size)
    }

    /// Creates an in-memory disk with the default 8 KiB page size.
    pub fn default_in_memory() -> Self {
        Self::in_memory(DEFAULT_PAGE_SIZE)
    }

    /// Creates (or truncates) a file-backed disk at `path`.
    pub fn file<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        Ok(Self::with_store(
            Box::new(FileStore::create(path, page_size)?),
            page_size,
        ))
    }

    /// Opens an existing file image at `path`; its whole pages count as
    /// already allocated.
    pub fn open_file<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        let store = FileStore::open(path, page_size)?;
        let pages = store.pages();
        let disk = Self::with_store(Box::new(store), page_size);
        disk.next_page.store(pages, Ordering::Relaxed);
        Ok(disk)
    }

    /// Opens an existing checksummed file image (with its `.sums` sidecar,
    /// backfilled if missing); its whole pages count as already allocated.
    pub fn open_file_checksummed<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        let store = FileStore::open_checksummed(path, page_size)?;
        let pages = store.pages();
        let disk = Self::with_store(Box::new(store), page_size);
        disk.next_page.store(pages, Ordering::Relaxed);
        Ok(disk)
    }

    /// Creates a disk for `backend`: in-memory, or a file image named
    /// `<tag>.pages` under the backend's directory (created as needed).
    pub fn for_backend(backend: &StoreBackend, page_size: usize, tag: &str) -> io::Result<Self> {
        match backend {
            StoreBackend::Mem => Ok(Self::in_memory(page_size)),
            StoreBackend::File(dir) => {
                std::fs::create_dir_all(dir)?;
                Self::file(dir.join(format!("{tag}.pages")), page_size)
            }
            StoreBackend::FileChecksummed(dir) => {
                std::fs::create_dir_all(dir)?;
                Ok(Self::with_store(
                    Box::new(FileStore::create_checksummed(
                        dir.join(format!("{tag}.pages")),
                        page_size,
                    )?),
                    page_size,
                ))
            }
        }
    }

    /// Replaces the cost model (builder style).
    pub fn with_model(mut self, model: DiskModel) -> Self {
        self.model = model;
        self
    }

    /// Injects device latency on reads: every read sleeps `scale` times
    /// the modeled cost of that access (builder style; 0 disables).
    ///
    /// The sleep happens on the reading thread *after* the bytes are in,
    /// so threads reading concurrently overlap their latencies exactly
    /// like tagged commands overlap on a real device queue.
    pub fn with_read_latency(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0, "latency scale must be non-negative");
        self.read_latency = scale;
        self
    }

    /// The configured read-latency injection scale (0 = off).
    #[inline]
    pub fn read_latency(&self) -> f64 {
        self.read_latency
    }

    /// The configured page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The cost model in effect.
    #[inline]
    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Which backend this disk uses.
    pub fn backend_kind(&self) -> DiskBackendKind {
        self.store.kind()
    }

    /// Bytes currently held by the backing store (the written extent —
    /// the size of the file image for file-backed disks).
    pub fn store_len(&self) -> u64 {
        self.store.len()
    }

    /// Number of pages allocated so far.
    pub fn allocated_pages(&self) -> u64 {
        self.next_page.load(Ordering::Relaxed)
    }

    /// Allocates one fresh page and returns its id.
    pub fn allocate(&self) -> PageId {
        PageId(self.next_page.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates `n` physically contiguous pages and returns the first id.
    ///
    /// Contiguity matters: sequentially reading a contiguously written
    /// dataset is charged sequential-transfer cost only.
    pub fn allocate_contiguous(&self, n: u64) -> PageId {
        PageId(self.next_page.fetch_add(n, Ordering::Relaxed))
    }

    /// Ensures the allocation watermark covers at least `pages` pages.
    ///
    /// WAL recovery uses this: replayed records may address pages that were
    /// allocated (and logged) but never flushed before the crash, so they
    /// lie past the reopened image's extent.
    pub fn ensure_allocated(&self, pages: u64) {
        self.next_page.fetch_max(pages, Ordering::Relaxed);
    }

    /// Forces all written pages to durable media (fsync for file-backed
    /// disks; a no-op in memory).
    pub fn sync(&self) -> io::Result<()> {
        self.store.sync()
    }

    /// Writes `data` to page `id`. `data` must not exceed the page size;
    /// shorter data is zero-padded to a full page.
    ///
    /// # Panics
    /// Panics if `data.len() > page_size`, the page was never allocated,
    /// or the backing store fails.
    pub fn write_page(&self, id: PageId, data: &[u8]) {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        assert!(
            id.0 < self.allocated_pages(),
            "write to unallocated page {id}"
        );
        let prev = self.last_write.swap(id.0, Ordering::Relaxed);
        let (forward, gap) = jump_from(prev, id.0);
        self.stats
            .record_write(gap == 0, self.model.cost_for_jump(forward, gap));

        let offset = id.0 * self.page_size as u64;
        if data.len() == self.page_size {
            self.store
                .write_page(offset, data)
                .unwrap_or_else(|e| panic!("page write failed ({id}): {e}"));
        } else {
            // Zero-pad the tail so re-writes of shorter data do not leak.
            let mut page = vec![0u8; self.page_size];
            page[..data.len()].copy_from_slice(data);
            self.store
                .write_page(offset, &page)
                .unwrap_or_else(|e| panic!("page write failed ({id}): {e}"));
        }
    }

    /// Reads page `id` into `buf` (which must be exactly one page long).
    ///
    /// # Panics
    /// Panics if `buf.len() != page_size`, the page was never allocated,
    /// or the backing store fails (e.g. a torn page in a truncated file
    /// image).
    pub fn read_page(&self, id: PageId, buf: &mut [u8]) {
        assert_eq!(
            buf.len(),
            self.page_size,
            "read buffer must be exactly one page"
        );
        assert!(
            id.0 < self.allocated_pages(),
            "read of unallocated page {id}"
        );
        let prev = self.last_read.swap(id.0, Ordering::Relaxed);
        let (forward, gap) = jump_from(prev, id.0);
        let cost = self.model.cost_for_jump(forward, gap);
        self.stats.record_read(gap == 0, cost);

        let offset = id.0 * self.page_size as u64;
        self.store
            .read_page(offset, buf)
            .unwrap_or_else(|e| panic!("page read failed ({id}): {e}"));
        if self.read_latency > 0.0 {
            std::thread::sleep(cost.mul_f64(self.read_latency));
        }
    }

    /// Convenience: reads page `id` into a fresh buffer.
    pub fn read_page_vec(&self, id: PageId) -> Vec<u8> {
        let mut buf = vec![0u8; self.page_size];
        self.read_page(id, &mut buf);
        buf
    }

    /// Point-in-time copy of the I/O counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the I/O counters (e.g. between the index and join phases) and
    /// forgets the head position, so the first access of the next phase is
    /// charged as random — matching the paper's cold-cache methodology.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.last_read.store(PageId::NONE, Ordering::Relaxed);
        self.last_write.store(PageId::NONE, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("page_size", &self.page_size)
            .field("backend", &self.backend_kind())
            .field("allocated_pages", &self.allocated_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_memory() {
        let d = Disk::in_memory(64);
        let p = d.allocate();
        d.write_page(p, b"hello");
        let buf = d.read_page_vec(p);
        assert_eq!(&buf[..5], b"hello");
        assert!(buf[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn sequential_vs_random_classification() {
        let d = Disk::in_memory(32).with_model(DiskModel::free());
        let p0 = d.allocate_contiguous(3);
        for i in 0..3 {
            d.write_page(PageId(p0.0 + i), &[i as u8]);
        }
        // First write is random (no previous head position), next two follow.
        let s = d.stats();
        assert_eq!(s.rand_writes, 1);
        assert_eq!(s.seq_writes, 2);

        let mut buf = vec![0u8; 32];
        d.read_page(PageId(2), &mut buf);
        d.read_page(PageId(0), &mut buf);
        d.read_page(PageId(1), &mut buf);
        d.read_page(PageId(2), &mut buf);
        let s = d.stats();
        // 2 is random, 0 is random (backwards), 1 and 2 are sequential.
        assert_eq!(s.rand_reads, 2);
        assert_eq!(s.seq_reads, 2);
    }

    #[test]
    fn sim_time_integrates_model() {
        let d = Disk::in_memory(32); // default SAS model
        let p = d.allocate();
        d.write_page(p, &[1]);
        let mut buf = vec![0u8; 32];
        d.read_page(p, &mut buf);
        let s = d.stats();
        let m = DiskModel::default();
        // Cold head: both accesses are charged a full-stroke positioning.
        assert_eq!(s.sim_write_time(), m.cost_for_gap(u64::MAX));
        assert_eq!(s.sim_read_time(), m.cost_for_gap(u64::MAX));
    }

    #[test]
    fn near_reads_cost_less_than_far_reads() {
        let d = Disk::in_memory(32);
        let _ = d.allocate_contiguous(200_000);
        let mut buf = vec![0u8; 32];
        d.read_page(PageId(0), &mut buf);
        d.reset_stats();
        d.read_page(PageId(0), &mut buf);
        d.read_page(PageId(5), &mut buf); // near seek
        let near = d.stats().sim_read_time();
        d.reset_stats();
        d.read_page(PageId(0), &mut buf);
        d.read_page(PageId(199_999), &mut buf); // far seek
        let far = d.stats().sim_read_time();
        assert!(far > near, "far {far:?} vs near {near:?}");
    }

    #[test]
    fn reset_stats_forgets_head() {
        let d = Disk::in_memory(32).with_model(DiskModel::free());
        let _ = d.allocate_contiguous(3);
        d.write_page(PageId(0), &[0]);
        d.write_page(PageId(1), &[1]);
        d.reset_stats();
        // Page 2 would be sequential after page 1, but the head position was
        // forgotten by reset_stats, so it must be classified random.
        d.write_page(PageId(2), &[2]);
        let s = d.stats();
        assert_eq!(s.rand_writes, 1);
        assert_eq!(s.seq_writes, 0);
    }

    #[test]
    fn unwritten_page_reads_zero() {
        let d = Disk::in_memory(16);
        let p = d.allocate();
        let buf = d.read_page_vec(p);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let d = Disk::in_memory(16);
        let mut buf = vec![0u8; 16];
        d.read_page(PageId(0), &mut buf);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let d = Disk::in_memory(4);
        let p = d.allocate();
        d.write_page(p, &[0; 5]);
    }

    #[test]
    fn file_backend_roundtrip() {
        let path = std::env::temp_dir().join(format!("tfm_disk_test_{}.bin", std::process::id()));
        let d = Disk::file(&path, 128).unwrap();
        let p0 = d.allocate_contiguous(4);
        d.write_page(PageId(p0.0 + 2), b"page two");
        d.write_page(PageId(p0.0), b"page zero");
        assert_eq!(&d.read_page_vec(PageId(p0.0 + 2))[..8], b"page two");
        assert_eq!(&d.read_page_vec(PageId(p0.0))[..9], b"page zero");
        // allocated-but-unwritten page reads zeros
        assert!(d.read_page_vec(PageId(p0.0 + 3)).iter().all(|&b| b == 0));
        assert_eq!(d.backend_kind(), DiskBackendKind::File);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_matches_memory_byte_for_byte() {
        let path = std::env::temp_dir().join(format!("tfm_disk_eq_{}.bin", std::process::id()));
        let mem = Disk::in_memory(64);
        let file = Disk::file(&path, 64).unwrap();
        for d in [&mem, &file] {
            let first = d.allocate_contiguous(8);
            for i in 0..8u64 {
                // Short writes exercise the zero-padding path.
                d.write_page(PageId(first.0 + i), &vec![i as u8; 1 + i as usize]);
            }
        }
        for i in 0..8u64 {
            assert_eq!(mem.read_page_vec(PageId(i)), file.read_page_vec(PageId(i)));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_file_resumes_allocation_at_image_end() {
        let path = std::env::temp_dir().join(format!("tfm_disk_open_{}.bin", std::process::id()));
        {
            let d = Disk::file(&path, 64).unwrap();
            let p = d.allocate_contiguous(3);
            for i in 0..3u64 {
                d.write_page(PageId(p.0 + i), &[i as u8]);
            }
        }
        let d = Disk::open_file(&path, 64).unwrap();
        assert_eq!(d.allocated_pages(), 3);
        assert_eq!(d.read_page_vec(PageId(2))[0], 2);
        assert_eq!(d.allocate(), PageId(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backend_constructor_places_file_images_under_dir() {
        let dir = std::env::temp_dir().join(format!("tfm_disk_dir_{}", std::process::id()));
        let d = Disk::for_backend(&StoreBackend::File(dir.clone()), 64, "unit-test").unwrap();
        let p = d.allocate();
        d.write_page(p, &[42]);
        assert!(dir.join("unit-test.pages").is_file());
        assert_eq!(d.store_len(), 64);
        let m = Disk::for_backend(&StoreBackend::Mem, 64, "ignored").unwrap();
        assert_eq!(m.backend_kind(), DiskBackendKind::Memory);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_latency_injection_slows_reads() {
        use std::time::{Duration, Instant};
        let d = Disk::in_memory(32); // default SAS model: ~ms-scale costs
        let _ = d.allocate_contiguous(4);
        let mut buf = vec![0u8; 32];
        let throttled = Disk::in_memory(32).with_read_latency(0.005);
        let _ = throttled.allocate_contiguous(4);
        let t0 = Instant::now();
        for i in 0..4u64 {
            d.read_page(PageId(i), &mut buf);
        }
        let unthrottled = t0.elapsed();
        let t0 = Instant::now();
        for i in 0..4u64 {
            throttled.read_page(PageId(i), &mut buf);
        }
        let slowed = t0.elapsed();
        // 4 reads at >= request_overhead+transfer (350us) * 0.005 sleep
        // each: at least ~7us of injected latency in total.
        assert!(slowed > unthrottled);
        assert!(slowed >= Duration::from_micros(5), "slowed {slowed:?}");
        assert_eq!(throttled.read_latency(), 0.005);
    }

    #[test]
    fn allocate_contiguous_returns_first_of_run() {
        let d = Disk::in_memory(16);
        let a = d.allocate_contiguous(10);
        let b = d.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(10));
        assert_eq!(d.allocated_pages(), 11);
    }
}
