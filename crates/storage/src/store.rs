//! Page storage backends: where a [`crate::Disk`]'s bytes actually live.
//!
//! [`PageStore`] is the seam between the disk's *accounting* (allocation,
//! sequential/random classification, the [`crate::DiskModel`] cost oracle)
//! and its *bytes*. Two implementations:
//!
//! * [`MemStore`] — a growable memory buffer behind one `RwLock`; the
//!   deterministic default every test and harness ran on before real I/O
//!   existed. Behaviour is unchanged from the old in-memory backend.
//! * [`FileStore`] — a real on-disk file of fixed-size pages accessed with
//!   positional `pread`/`pwrite` (`FileExt::read_at`/`write_all_at`).
//!   There is **no global file-offset lock**: positional I/O carries its
//!   offset per call, so any number of threads can read concurrently —
//!   this is what lets the prefetch pipeline keep a queue depth of reads
//!   in flight against one file.
//!
//! Error semantics of [`FileStore`] are strict where silence would hide
//! corruption: a page that lies wholly past end-of-file reads as zeros
//! (allocated-but-never-written, matching [`MemStore`]), but end-of-file
//! landing *inside* a page is a torn/truncated image and surfaces as
//! [`std::io::ErrorKind::UnexpectedEof`]; likewise
//! [`FileStore::open`] rejects images whose length is not a multiple of
//! the page size.
//!
//! The checksummed variants ([`FileStore::create_checksummed`] /
//! [`FileStore::open_checksummed`]) add torn-*write* protection: every
//! page write also records a 64-bit FNV-1a checksum in a `.sums` sidecar
//! file, and every read verifies it. A mismatch (a write that reached the
//! image but not the sidecar, or vice versa, or bit rot) surfaces as
//! [`std::io::ErrorKind::InvalidData`] with a "checksum mismatch" message
//! — recognizable via [`is_checksum_mismatch`] and distinct from the
//! truncated-image `UnexpectedEof`. The sidecar (rather than an in-page
//! footer) keeps page images byte-identical to the memory backend, which
//! the file≡mem equivalence suite depends on.

use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::DiskBackendKind;

/// A page-granular byte store: the backend a [`crate::Disk`] reads and
/// writes through.
///
/// Offsets are byte offsets (always page-aligned: the disk multiplies page
/// id by page size) and `buf`/`page` are always exactly one page long.
/// Implementations must be safe for concurrent calls from many threads —
/// the prefetch pipeline issues reads from dedicated I/O threads while
/// serve workers read through the cache.
pub trait PageStore: Send + Sync {
    /// Which backend family this store is (for reporting).
    fn kind(&self) -> DiskBackendKind;

    /// Reads one page at `offset` into `buf`, zero-filling pages beyond
    /// the written extent.
    fn read_page(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes one full page at `offset`, extending the store as needed.
    fn write_page(&self, offset: u64, page: &[u8]) -> io::Result<()>;

    /// Bytes currently stored (the written extent, not the allocation).
    fn len(&self) -> u64;

    /// True when nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces all written pages to durable media (fsync for file-backed
    /// stores). A no-op for memory stores.
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

/// 64-bit FNV-1a over `bytes` — the page/record checksum used by the
/// checksummed [`FileStore`] sidecar and the WAL record framing.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// True when `err` is a per-page checksum mismatch from a checksummed
/// [`FileStore`] (torn write or corruption), as opposed to the
/// truncated-image [`std::io::ErrorKind::UnexpectedEof`] torn-page error.
pub fn is_checksum_mismatch(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::InvalidData && err.to_string().contains("checksum mismatch")
}

/// The in-memory page store: a growable `Vec<u8>` behind a `RwLock`.
#[derive(Default)]
pub struct MemStore {
    bytes: RwLock<Vec<u8>>,
}

impl MemStore {
    /// Creates an empty memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn kind(&self) -> DiskBackendKind {
        DiskBackendKind::Memory
    }

    fn read_page(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let offset = offset as usize;
        let bytes = self.bytes.read();
        if bytes.len() >= offset + buf.len() {
            buf.copy_from_slice(&bytes[offset..offset + buf.len()]);
        } else {
            // Allocated but never written: reads as zeros.
            buf.fill(0);
        }
        Ok(())
    }

    fn write_page(&self, offset: u64, page: &[u8]) -> io::Result<()> {
        let offset = offset as usize;
        let mut bytes = self.bytes.write();
        if bytes.len() < offset + page.len() {
            bytes.resize(offset + page.len(), 0);
        }
        bytes[offset..offset + page.len()].copy_from_slice(page);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.bytes.read().len() as u64
    }
}

impl std::fmt::Debug for MemStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemStore")
            .field("len", &self.len())
            .finish()
    }
}

/// The real-file page store: positional I/O against one on-disk image,
/// optionally paired with a per-page checksum sidecar (`<image>.sums`).
#[derive(Debug)]
pub struct FileStore {
    file: File,
    path: PathBuf,
    page_size: usize,
    /// Per-page FNV-1a sidecar (8 bytes per page, same index as the image).
    /// `None` for plain (unchecksummed) stores.
    sums: Option<File>,
}

impl FileStore {
    /// Creates (or truncates) a page image at `path`.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        Self::create_inner(path.as_ref(), page_size, false)
    }

    /// Creates (or truncates) a page image at `path` together with a
    /// `.sums` checksum sidecar; every read verifies its page checksum.
    pub fn create_checksummed<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        Self::create_inner(path.as_ref(), page_size, true)
    }

    fn create_inner(path: &Path, page_size: usize, checksummed: bool) -> io::Result<Self> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let sums = if checksummed {
            Some(
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(Self::sums_path(path))?,
            )
        } else {
            None
        };
        Ok(Self {
            file,
            path: path.to_path_buf(),
            page_size,
            sums,
        })
    }

    /// Opens an existing page image at `path`, rejecting images whose
    /// length is not a whole number of pages (a truncated or foreign file).
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        Self::open_inner(path.as_ref(), page_size, false)
    }

    /// Opens an existing page image together with its `.sums` sidecar,
    /// creating and backfilling the sidecar when it is missing or short
    /// (migration path for images created by the plain backend).
    pub fn open_checksummed<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        Self::open_inner(path.as_ref(), page_size, true)
    }

    fn open_inner(path: &Path, page_size: usize, checksummed: bool) -> io::Result<Self> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "page image {} is {} bytes, not a multiple of the {}-byte page size (truncated?)",
                    path.display(),
                    len,
                    page_size
                ),
            ));
        }
        let sums = if checksummed {
            let sums = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(Self::sums_path(path))?;
            // Backfill checksums for pages the sidecar does not cover yet.
            let pages = len / page_size as u64;
            let covered = sums.metadata()?.len() / 8;
            let mut buf = vec![0u8; page_size];
            for p in covered..pages {
                file.read_exact_at(&mut buf, p * page_size as u64)?;
                sums.write_all_at(&fnv1a64(&buf).to_le_bytes(), p * 8)?;
            }
            Some(sums)
        } else {
            None
        };
        Ok(Self {
            file,
            path: path.to_path_buf(),
            page_size,
            sums,
        })
    }

    fn sums_path(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_os_string();
        p.push(".sums");
        PathBuf::from(p)
    }

    /// Whole pages currently in the image.
    pub fn pages(&self) -> u64 {
        self.len() / self.page_size as u64
    }

    /// Path of the backing image.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when this store verifies a per-page checksum sidecar.
    pub fn is_checksummed(&self) -> bool {
        self.sums.is_some()
    }

    fn verify_checksum(&self, sums: &File, offset: u64, buf: &[u8]) -> io::Result<()> {
        let index = offset / self.page_size as u64;
        let mut stored = [0u8; 8];
        let mut read = 0;
        while read < stored.len() {
            match sums.read_at(&mut stored[read..], index * 8 + read as u64) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let stored = u64::from_le_bytes(stored);
        // A zero slot means "never recorded": legitimate only for a hole —
        // a page the image extends over but never wrote (reads as zeros).
        if stored == 0 && read < 8 {
            return Ok(());
        }
        if stored == 0 && buf.iter().all(|&b| b == 0) {
            return Ok(());
        }
        let computed = fnv1a64(buf);
        if stored != computed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checksum mismatch on page {} of {}: stored {:#018x}, computed {:#018x} (torn write or corruption)",
                    index,
                    self.path.display(),
                    stored,
                    computed
                ),
            ));
        }
        Ok(())
    }
}

impl PageStore for FileStore {
    fn kind(&self) -> DiskBackendKind {
        DiskBackendKind::File
    }

    fn read_page(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        buf.fill(0);
        let mut read = 0;
        while read < buf.len() {
            match self.file.read_at(&mut buf[read..], offset + read as u64) {
                // EOF before the first byte: the page lies wholly past the
                // written extent and legitimately reads as zeros. EOF
                // *inside* the page means the image was truncated.
                Ok(0) if read == 0 => break,
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "torn page in {}: end-of-file after {} of {} bytes at offset {}",
                            self.path.display(),
                            read,
                            buf.len(),
                            offset
                        ),
                    ))
                }
                Ok(n) => read += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if let Some(sums) = &self.sums {
            // Pages wholly past EOF never hit the disk and are trivially
            // consistent (all zeros, nothing recorded).
            if read > 0 {
                self.verify_checksum(sums, offset, buf)?;
            }
        }
        Ok(())
    }

    fn write_page(&self, offset: u64, page: &[u8]) -> io::Result<()> {
        self.file.write_all_at(page, offset)?;
        if let Some(sums) = &self.sums {
            let index = offset / self.page_size as u64;
            sums.write_all_at(&fnv1a64(page).to_le_bytes(), index * 8)?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_data()?;
        if let Some(sums) = &self.sums {
            sums.sync_data()?;
        }
        Ok(())
    }
}

/// Which [`PageStore`] a harness or CLI run should construct its disks
/// with — the configuration-level counterpart of [`DiskBackendKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StoreBackend {
    /// In-memory pages ([`MemStore`]); the deterministic default.
    #[default]
    Mem,
    /// Real file images ([`FileStore`]) created under the given directory,
    /// one per disk, named by the caller's tag.
    File(PathBuf),
    /// Real file images with per-page checksum sidecars
    /// ([`FileStore::create_checksummed`]) — the backend the mutable write
    /// path uses so torn data-page writes are detected on read.
    FileChecksummed(PathBuf),
}

impl StoreBackend {
    /// The backend family this configuration produces.
    pub fn kind(&self) -> DiskBackendKind {
        match self {
            StoreBackend::Mem => DiskBackendKind::Memory,
            StoreBackend::File(_) | StoreBackend::FileChecksummed(_) => DiskBackendKind::File,
        }
    }

    /// True for the file-backed variants.
    pub fn is_file(&self) -> bool {
        matches!(
            self,
            StoreBackend::File(_) | StoreBackend::FileChecksummed(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tfm_store_{}_{}.pages", tag, std::process::id()))
    }

    #[test]
    fn mem_store_roundtrip_and_zero_fill() {
        let s = MemStore::new();
        s.write_page(64, &[7u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        s.read_page(64, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        // Page past the written extent reads zeros.
        buf.fill(0xff);
        s.read_page(128, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(s.len(), 128);
    }

    #[test]
    fn file_store_concurrent_positional_reads() {
        let path = temp_path("concurrent");
        let s = FileStore::create(&path, 64).unwrap();
        for i in 0..16u64 {
            s.write_page(i * 64, &[i as u8; 64]).unwrap();
        }
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                scope.spawn(move || {
                    let mut buf = [0u8; 64];
                    for round in 0..32u64 {
                        let p = (round * 5 + t) % 16;
                        s.read_page(p * 64, &mut buf).unwrap();
                        assert_eq!(buf, [p as u8; 64]);
                    }
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_short_read_is_a_torn_page_error() {
        let path = temp_path("torn");
        let s = FileStore::create(&path, 64).unwrap();
        s.write_page(0, &[1u8; 64]).unwrap();
        s.write_page(64, &[2u8; 64]).unwrap();
        // Truncate mid-page: page 1 now ends after 32 of its 64 bytes.
        s.file.set_len(96).unwrap();
        let mut buf = [0u8; 64];
        // Page 0 is intact.
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 64]);
        // Page 1 is torn: must error, not silently zero-extend.
        let err = s.read_page(64, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("torn page"), "{err}");
        // Page 2 lies wholly past EOF: legitimate zero page.
        s.read_page(128, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_truncated_images() {
        let path = temp_path("openshort");
        {
            let s = FileStore::create(&path, 64).unwrap();
            s.write_page(0, &[3u8; 64]).unwrap();
            s.file.set_len(63).unwrap();
        }
        let err = FileStore::open(&path, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("not a multiple"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_reads_existing_image() {
        let path = temp_path("reopen");
        {
            let s = FileStore::create(&path, 64).unwrap();
            s.write_page(0, &[9u8; 64]).unwrap();
            s.write_page(64, &[8u8; 64]).unwrap();
        }
        let s = FileStore::open(&path, 64).unwrap();
        assert_eq!(s.pages(), 2);
        let mut buf = [0u8; 64];
        s.read_page(64, &mut buf).unwrap();
        assert_eq!(buf, [8u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_missing_file_errors() {
        let err = FileStore::open(temp_path("missing"), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn checksummed_store_roundtrips_and_detects_corruption() {
        let path = temp_path("sums");
        let s = FileStore::create_checksummed(&path, 64).unwrap();
        assert!(s.is_checksummed());
        s.write_page(0, &[5u8; 64]).unwrap();
        s.write_page(64, &[6u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 64]);
        // Page past EOF still reads as zeros with no checksum complaint.
        s.read_page(256, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        // Flip a byte in the image behind the sidecar's back: the next
        // read must surface a checksum mismatch, not silent corruption.
        s.file.write_all_at(&[0xAA], 70).unwrap();
        let err = s.read_page(64, &mut buf).unwrap_err();
        assert!(is_checksum_mismatch(&err), "{err}");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Distinct from the torn-page (truncated image) error kind.
        assert_ne!(err.kind(), io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(FileStore::sums_path(&path)).ok();
    }

    #[test]
    fn checksummed_store_detects_torn_data_write() {
        let path = temp_path("tornwrite");
        {
            let s = FileStore::create_checksummed(&path, 64).unwrap();
            s.write_page(0, &[9u8; 64]).unwrap();
        }
        // Simulate a torn write: the page bytes changed but the process
        // died before the checksum landed (overwrite image directly).
        {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.write_all_at(&[1u8; 32], 0).unwrap();
        }
        let s = FileStore::open_checksummed(&path, 64).unwrap();
        let mut buf = [0u8; 64];
        let err = s.read_page(0, &mut buf).unwrap_err();
        assert!(is_checksum_mismatch(&err), "{err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(FileStore::sums_path(&path)).ok();
    }

    #[test]
    fn open_checksummed_backfills_plain_images() {
        let path = temp_path("backfill");
        {
            let s = FileStore::create(&path, 64).unwrap();
            s.write_page(0, &[3u8; 64]).unwrap();
            s.write_page(64, &[4u8; 64]).unwrap();
        }
        // Opening with checksums computes sums for the existing pages.
        let s = FileStore::open_checksummed(&path, 64).unwrap();
        let mut buf = [0u8; 64];
        s.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 64]);
        s.read_page(64, &mut buf).unwrap();
        assert_eq!(buf, [4u8; 64]);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(FileStore::sums_path(&path)).ok();
    }
}
