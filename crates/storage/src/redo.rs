//! The write-path seam: redo logging and logged page writes.
//!
//! The mutable index layers (B+-tree insert/delete, TRANSFORMERS unit
//! mutation) never talk to a concrete WAL — they write through
//! [`PageWrites`], which pairs the read abstraction ([`PageReads`]) with a
//! `write`/`allocate` half, and the durability contract lives behind
//! [`RedoLog`]:
//!
//! * every page write is first appended to the log as a **full-page
//!   after-image** (physical redo — replay is naturally idempotent), which
//!   returns the record's LSN;
//! * the new bytes then land in the [`SharedPageCache`] dirty tier stamped
//!   with that LSN ([`SharedPageCache::write_page`]);
//! * dirty frames only reach the [`Disk`] through
//!   [`SharedPageCache::flush_dirty`], whose gate compares each frame's
//!   LSN against [`RedoLog::durable_lsn`] — the WAL-before-data ordering
//!   invariant in one comparison.
//!
//! `tfm-wal` provides the real segmented, group-committing implementation
//! of [`RedoLog`]; [`NoopLog`] here is the no-durability stand-in (every
//! LSN is instantly "durable") so the mutable layers can be built, tested
//! and benchmarked without a log directory. This split keeps the
//! dependency graph acyclic: storage defines the traits, `tfm-wal` depends
//! on storage, and the index crates depend only on storage.

use crate::cache::{PageReads, PageSlice, PoolCounters};
use crate::shared::{DecodedOutcome, ReadOutcome};
use crate::{Disk, ElemSlice, ElementPageCodec, PageId, SharedPageCache};
use std::sync::atomic::{AtomicU64, Ordering};
use tfm_geom::SpatialElement;

/// A redo-only write-ahead log: append page after-images, commit, ask
/// what is durable.
///
/// Contract: [`log_page`](RedoLog::log_page) returns a strictly
/// monotonically increasing LSN per record; [`commit`](RedoLog::commit)
/// returns only once the transaction's records (and the commit record)
/// are durable, and its return value — like
/// [`durable_lsn`](RedoLog::durable_lsn) — is a lower bound on the LSNs
/// that are on stable storage. Implementations are shared by reference
/// across writer threads.
pub trait RedoLog: Send + Sync {
    /// Opens a new transaction and returns its id.
    fn begin(&self) -> u64;

    /// Appends a full-page after-image for `page` under transaction
    /// `txn`; returns the record's LSN. `image` must be exactly one page.
    fn log_page(&self, txn: u64, page: PageId, image: &[u8]) -> u64;

    /// Appends a commit record for `txn` and makes the transaction
    /// durable; returns the durable LSN (covering at least this commit).
    fn commit(&self, txn: u64) -> u64;

    /// Highest LSN known to be on stable storage.
    fn durable_lsn(&self) -> u64;

    /// Forces everything appended so far to stable storage and returns
    /// the resulting durable LSN.
    fn sync(&self) -> u64;
}

/// The no-durability [`RedoLog`]: LSNs are handed out and instantly
/// "durable", nothing is written anywhere. In-memory mutable indexes use
/// this — the flush gate always passes, crash recovery is moot.
#[derive(Debug, Default)]
pub struct NoopLog {
    next_lsn: AtomicU64,
    next_txn: AtomicU64,
}

impl NoopLog {
    /// Creates a fresh no-op log (LSNs start at 1).
    pub fn new() -> Self {
        Self::default()
    }
}

impl RedoLog for NoopLog {
    fn begin(&self) -> u64 {
        self.next_txn.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn log_page(&self, _txn: u64, _page: PageId, _image: &[u8]) -> u64 {
        self.next_lsn.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn commit(&self, _txn: u64) -> u64 {
        self.durable_lsn()
    }

    fn durable_lsn(&self) -> u64 {
        self.next_lsn.load(Ordering::Relaxed)
    }

    fn sync(&self) -> u64 {
        self.durable_lsn()
    }
}

/// [`PageReads`] plus the write half: the handle the mutable index layers
/// are generic over.
///
/// `write` must make the new bytes visible to subsequent reads through
/// *this and every concurrent* handle of the same dataset (the logged
/// implementation routes through the shared cache), and `allocate` hands
/// out fresh page ids. Like reads, handles are `&mut self` per owner;
/// cross-writer coordination (latching) lives above this trait.
pub trait PageWrites: PageReads {
    /// Writes `bytes` (at most one page; shorter data is zero-padded) to
    /// page `id`.
    fn write(&mut self, id: PageId, bytes: &[u8]);

    /// Allocates a fresh page and returns its id.
    fn allocate(&mut self) -> PageId;

    /// The page size of the underlying disk.
    fn page_size(&self) -> usize;
}

/// Direct write-through, no cache, no log: for standalone structure tests
/// and initial (pre-WAL) image construction. Reads pair with the existing
/// uncached `PageReads for &Disk`.
impl PageWrites for &Disk {
    fn write(&mut self, id: PageId, bytes: &[u8]) {
        self.write_page(id, bytes);
    }

    fn allocate(&mut self) -> PageId {
        Disk::allocate(self)
    }

    fn page_size(&self) -> usize {
        Disk::page_size(self)
    }
}

/// The logged write handle: reads through the [`SharedPageCache`] (seeing
/// dirty frames), writes via log-then-cache under one transaction.
///
/// One handle per writer per transaction: create it with the transaction
/// id from [`RedoLog::begin`], perform the mutation, then commit through
/// the log. The handle never flushes — that is the batch boundary's job.
pub struct LoggedPages<'l, 'c, 'd> {
    log: &'l dyn RedoLog,
    cache: &'c SharedPageCache<'d>,
    txn: u64,
    counters: PoolCounters,
    scratch: Vec<u8>,
}

impl<'l, 'c, 'd> LoggedPages<'l, 'c, 'd> {
    /// Creates a write handle for transaction `txn`.
    pub fn new(log: &'l dyn RedoLog, cache: &'c SharedPageCache<'d>, txn: u64) -> Self {
        Self {
            log,
            cache,
            txn,
            counters: PoolCounters::default(),
            scratch: Vec::new(),
        }
    }

    /// The transaction this handle writes under.
    pub fn txn(&self) -> u64 {
        self.txn
    }

    /// The cache this handle reads and writes through.
    pub fn cache(&self) -> &'c SharedPageCache<'d> {
        self.cache
    }
}

impl PageReads for LoggedPages<'_, '_, '_> {
    fn page(&mut self, id: PageId) -> PageSlice<'_> {
        let (page, outcome) = self.cache.read_tracked(id);
        match outcome {
            ReadOutcome::Hit => self.counters.hits += 1,
            ReadOutcome::PrefetchHit => self.counters.prefetch_hits += 1,
            ReadOutcome::Miss => self.counters.misses += 1,
        }
        PageSlice::Pinned(page)
    }

    fn elements<'s>(
        &'s mut self,
        codec: &ElementPageCodec,
        id: PageId,
        _scratch: &'s mut Vec<SpatialElement>,
    ) -> ElemSlice<'s> {
        let (elems, outcome) = self.cache.read_decoded_tracked(codec, id);
        match outcome {
            DecodedOutcome::Decoded => {
                self.counters.hits += 1;
                self.counters.decoded_hits += 1;
            }
            DecodedOutcome::Page => {
                self.counters.hits += 1;
                self.counters.decoded_misses += 1;
            }
            DecodedOutcome::PrefetchedPage => {
                self.counters.prefetch_hits += 1;
                self.counters.decoded_misses += 1;
            }
            DecodedOutcome::Miss => {
                self.counters.misses += 1;
                self.counters.decoded_misses += 1;
            }
        }
        ElemSlice::Cached(elems)
    }

    fn counters(&self) -> PoolCounters {
        self.counters
    }
}

impl PageWrites for LoggedPages<'_, '_, '_> {
    fn write(&mut self, id: PageId, bytes: &[u8]) {
        let page_size = self.cache.disk().page_size();
        assert!(
            bytes.len() <= page_size,
            "write of {} bytes exceeds page size {}",
            bytes.len(),
            page_size
        );
        // Log the full-page after-image (zero-padded), then install the
        // same bytes in the cache's dirty tier stamped with the LSN.
        self.scratch.clear();
        self.scratch.extend_from_slice(bytes);
        self.scratch.resize(page_size, 0);
        let lsn = self.log.log_page(self.txn, id, &self.scratch);
        self.cache.write_page(id, &self.scratch, lsn);
    }

    fn allocate(&mut self) -> PageId {
        self.cache.disk().allocate()
    }

    fn page_size(&self) -> usize {
        self.cache.disk().page_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskModel;

    #[test]
    fn noop_log_lsns_are_monotonic_and_instantly_durable() {
        let log = NoopLog::new();
        let t = log.begin();
        let a = log.log_page(t, PageId(0), &[0u8; 8]);
        let b = log.log_page(t, PageId(1), &[0u8; 8]);
        assert!(b > a);
        assert!(log.durable_lsn() >= b, "no-op log is always durable");
        assert!(log.commit(t) >= b);
        assert_ne!(log.begin(), t);
    }

    #[test]
    fn logged_writes_go_through_cache_and_flush_after_commit() {
        let d = Disk::in_memory(64).with_model(DiskModel::free());
        let p = d.allocate();
        d.write_page(p, &[1u8; 64]);
        let cache = SharedPageCache::with_shards(&d, 4, 2);
        let log = NoopLog::new();

        let txn = log.begin();
        let mut h = LoggedPages::new(&log, &cache, txn);
        assert_eq!(h.page(p)[0], 1);
        h.write(p, &[2u8; 16]); // short write: zero-padded
        assert_eq!(h.page(p)[0], 2, "handle reads its own write");
        assert_eq!(h.page(p)[20], 0, "tail was padded");
        assert_eq!(d.read_page_vec(p)[0], 1, "disk untouched before flush");
        log.commit(txn);

        let (flushed, retained) = cache.flush_dirty(log.durable_lsn());
        assert_eq!((flushed, retained), (1, 0));
        assert_eq!(d.read_page_vec(p)[0], 2);
    }

    #[test]
    fn direct_disk_writes_are_a_page_writes_impl() {
        let d = Disk::in_memory(32).with_model(DiskModel::free());
        let mut h: &Disk = &d;
        let p = PageWrites::allocate(&mut h);
        h.write(p, &[9u8; 4]);
        assert_eq!(h.page(p)[0], 9);
        assert_eq!(PageWrites::page_size(&h), 32);
    }
}
