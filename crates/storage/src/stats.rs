//! I/O statistics collection.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live, thread-safe I/O counters owned by a [`crate::Disk`].
///
/// Reads and writes are classified as *sequential* (page id is the successor
/// of the previously accessed page id of the same kind) or *random*. The
/// simulated device time integrated from the [`crate::DiskModel`] is
/// accumulated in nanoseconds.
#[derive(Debug, Default)]
pub struct IoStats {
    pub(crate) seq_reads: AtomicU64,
    pub(crate) rand_reads: AtomicU64,
    pub(crate) seq_writes: AtomicU64,
    pub(crate) rand_writes: AtomicU64,
    pub(crate) sim_read_nanos: AtomicU64,
    pub(crate) sim_write_nanos: AtomicU64,
}

impl IoStats {
    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            rand_reads: self.rand_reads.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
            rand_writes: self.rand_writes.load(Ordering::Relaxed),
            sim_read_nanos: self.sim_read_nanos.load(Ordering::Relaxed),
            sim_write_nanos: self.sim_write_nanos.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.seq_reads.store(0, Ordering::Relaxed);
        self.rand_reads.store(0, Ordering::Relaxed);
        self.seq_writes.store(0, Ordering::Relaxed);
        self.rand_writes.store(0, Ordering::Relaxed);
        self.sim_read_nanos.store(0, Ordering::Relaxed);
        self.sim_write_nanos.store(0, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self, sequential: bool, cost: Duration) {
        if sequential {
            self.seq_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_reads.fetch_add(1, Ordering::Relaxed);
        }
        self.sim_read_nanos
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, sequential: bool, cost: Duration) {
        if sequential {
            self.seq_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_writes.fetch_add(1, Ordering::Relaxed);
        }
        self.sim_write_nanos
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// An immutable copy of [`IoStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStatsSnapshot {
    /// Page reads whose page id followed the previously read id.
    pub seq_reads: u64,
    /// Page reads that required repositioning.
    pub rand_reads: u64,
    /// Page writes whose page id followed the previously written id.
    pub seq_writes: u64,
    /// Page writes that required repositioning.
    pub rand_writes: u64,
    /// Simulated device time spent reading, in nanoseconds.
    pub sim_read_nanos: u64,
    /// Simulated device time spent writing, in nanoseconds.
    pub sim_write_nanos: u64,
}

impl IoStatsSnapshot {
    /// Total page reads.
    pub fn reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// Total page writes.
    pub fn writes(&self) -> u64 {
        self.seq_writes + self.rand_writes
    }

    /// Fraction of reads classified sequential, in `0.0..=1.0` (0 when no
    /// reads happened). Locality optimizations — the index build's
    /// contiguous layouts, the serving layer's Hilbert-ordered batching —
    /// show up directly in this number.
    pub fn seq_read_fraction(&self) -> f64 {
        let total = self.reads();
        if total == 0 {
            return 0.0;
        }
        self.seq_reads as f64 / total as f64
    }

    /// Total simulated device time (read + write).
    pub fn sim_io_time(&self) -> Duration {
        Duration::from_nanos(self.sim_read_nanos + self.sim_write_nanos)
    }

    /// Simulated device time spent reading.
    pub fn sim_read_time(&self) -> Duration {
        Duration::from_nanos(self.sim_read_nanos)
    }

    /// Simulated device time spent writing.
    pub fn sim_write_time(&self) -> Duration {
        Duration::from_nanos(self.sim_write_nanos)
    }

    /// Publishes these counters into `reg` under the `io.*` naming scheme
    /// (see `tfm_obs::names`). Callers publish a phase's *delta* snapshot
    /// once per run, so repeated publication accumulates across runs but
    /// never double-counts within one.
    pub fn publish(&self, reg: &tfm_obs::MetricsRegistry) {
        use tfm_obs::names;
        reg.counter(names::IO_SEQ_READS).add(self.seq_reads);
        reg.counter(names::IO_RAND_READS).add(self.rand_reads);
        reg.counter(names::IO_SEQ_WRITES).add(self.seq_writes);
        reg.counter(names::IO_RAND_WRITES).add(self.rand_writes);
        reg.counter(names::IO_SIM_NANOS)
            .add(self.sim_read_nanos + self.sim_write_nanos);
    }

    /// Counter-wise difference `self - earlier`; use to measure a phase.
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            seq_writes: self.seq_writes - earlier.seq_writes,
            rand_writes: self.rand_writes - earlier.rand_writes,
            sim_read_nanos: self.sim_read_nanos - earlier.sim_read_nanos,
            sim_write_nanos: self.sim_write_nanos - earlier.sim_write_nanos,
        }
    }

    /// Counter-wise sum of two snapshots (e.g. both datasets' disks).
    pub fn merged(&self, other: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            seq_reads: self.seq_reads + other.seq_reads,
            rand_reads: self.rand_reads + other.rand_reads,
            seq_writes: self.seq_writes + other.seq_writes,
            rand_writes: self.rand_writes + other.rand_writes,
            sim_read_nanos: self.sim_read_nanos + other.sim_read_nanos,
            sim_write_nanos: self.sim_write_nanos + other.sim_write_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::default();
        s.record_read(true, Duration::from_micros(50));
        s.record_read(false, Duration::from_micros(6550));
        s.record_write(false, Duration::from_micros(6550));
        let snap = s.snapshot();
        assert_eq!(snap.seq_reads, 1);
        assert_eq!(snap.rand_reads, 1);
        assert_eq!(snap.reads(), 2);
        assert_eq!(snap.seq_read_fraction(), 0.5);
        assert_eq!(IoStatsSnapshot::default().seq_read_fraction(), 0.0);
        assert_eq!(snap.writes(), 1);
        assert_eq!(snap.sim_read_time(), Duration::from_micros(6600));
        assert_eq!(snap.sim_write_time(), Duration::from_micros(6550));
        assert_eq!(snap.sim_io_time(), Duration::from_micros(13150));
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::default();
        s.record_read(true, Duration::from_micros(1));
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn delta_and_merge() {
        let s = IoStats::default();
        s.record_read(true, Duration::from_micros(10));
        let a = s.snapshot();
        s.record_read(false, Duration::from_micros(20));
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.rand_reads, 1);
        let m = a.merged(&d);
        assert_eq!(m, b);
    }
}
