//! Scan-resistant 2Q frame replacement for [`crate::SharedPageCache`].
//!
//! Plain CLOCK treats every fill the same, so one large sequential scan —
//! a join reading each unit page exactly once, or a wide readahead window
//! — cycles the whole ring and flushes the hot working set the serve tier
//! spent thousands of reads warming. The classic fix (Johnson & Shasha's
//! 2Q) splits the cache into admission classes:
//!
//! * **A1in (probationary)** — every new page starts here and is evicted
//!   FIFO. A page touched once and never again leaves without ever
//!   displacing a hot frame.
//! * **Am (protected)** — pages with *demonstrated reuse*. A probationary
//!   frame is promoted on its second demand access; protected frames are
//!   evicted by a CLOCK sweep only when the probationary tier cannot
//!   yield a victim.
//! * **A1out (ghost)** — a bounded queue of recently evicted probationary
//!   page ids (no bytes). A demand miss whose id is still remembered here
//!   is reuse the cache was too small to see: it is admitted straight to
//!   the protected tier.
//!
//! Scan hints make the policy *scan-proof* rather than merely
//! scan-resistant: fills landed by the prefetch pipeline
//! ([`AdmitClass::Scan`]) are always probationary, never consult the
//! ghost queue, and — unless a demand read touches them while resident —
//! never enter it on eviction. A join streaming ten thousand pages
//! through the cache therefore competes only with its own probationary
//! tail, never with serve's protected set.
//!
//! The ring mirrors [`crate::clock::ClockRing`]'s interface (same
//! `find`/`get`/`insert`/`retain` shape, same pinned-frame overflow
//! guarantee: when every victim candidate is vetoed the ring grows one
//! frame instead of dead-locking) so the cache shards can swap policies
//! behind [`PolicyRing`] without touching the call sites.

use crate::clock::{ClockRing, Inserted};
use std::collections::{HashMap, HashSet, VecDeque};

/// Replacement policy of a [`crate::SharedPageCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// Second-chance CLOCK over one undifferentiated ring (the PR-5
    /// baseline, kept as the `--cache-policy clock` ablation).
    #[default]
    Clock,
    /// Scan-resistant 2Q admission: probationary A1in + ghost A1out +
    /// protected Am (see the module docs).
    TwoQ,
}

impl std::fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CachePolicy::Clock => write!(f, "clock"),
            CachePolicy::TwoQ => write!(f, "2q"),
        }
    }
}

impl std::str::FromStr for CachePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "clock" => Ok(CachePolicy::Clock),
            "2q" | "twoq" => Ok(CachePolicy::TwoQ),
            other => Err(format!(
                "unknown cache policy '{other}' (expected 'clock' or '2q')"
            )),
        }
    }
}

/// How a fill entered the cache — the signal 2Q's admission control runs
/// on. CLOCK ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitClass {
    /// A worker blocked on this page (demand miss or write install).
    Demand,
    /// The prefetch pipeline landed this page ahead of any demand for it:
    /// treat it as part of a sequential scan until proven otherwise.
    Scan,
}

/// 2Q bookkeeping counters, aggregated into `CacheStats` and published
/// under the `cache.2q.*` names.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TwoQCounters {
    /// Demand misses whose page id was remembered by the ghost queue and
    /// was therefore admitted straight to the protected tier.
    pub ghost_promotions: u64,
    /// Probationary frames promoted to the protected tier by a second
    /// demand access while resident.
    pub reuse_promotions: u64,
    /// Fills admitted with [`AdmitClass::Scan`] (always probationary).
    pub scan_admissions: u64,
    /// Evictions taken from the probationary tier.
    pub probation_evictions: u64,
    /// Evictions taken from the protected tier.
    pub protected_evictions: u64,
}

/// One cached page of the 2Q ring.
#[derive(Debug)]
struct Frame2<T> {
    page: u64,
    /// CLOCK reference bit; only consulted for protected frames.
    referenced: bool,
    /// True once a demand access touched the frame while resident. A
    /// demand fill counts as the first access; a scan fill does not. The
    /// *second* access promotes to the protected tier, and only accessed
    /// frames earn a ghost entry on probationary eviction.
    accessed: bool,
    /// Tier: protected Am (true) or probationary A1in (false).
    protected: bool,
    payload: T,
}

/// A fixed-capacity 2Q page ring: `page id -> frame` with scan-resistant
/// admission. See the module docs for the policy.
#[derive(Debug)]
pub(crate) struct TwoQRing<T> {
    capacity: usize,
    /// Probationary tier target size (classic Kin = capacity/4): while the
    /// probationary tier is larger, victims come from it first.
    kin: usize,
    frames: Vec<Frame2<T>>,
    map: HashMap<u64, usize>,
    /// Probationary pages, oldest first. Entries go stale when their page
    /// is promoted or evicted through another path; stale entries are
    /// dropped lazily when popped.
    a1in: VecDeque<u64>,
    /// Number of frames currently in the protected tier.
    protected: usize,
    /// CLOCK hand for the protected sweep (over `frames`, skipping
    /// probationary slots).
    hand: usize,
    /// Ghost queue (A1out): ids of accessed probationary evictions, oldest
    /// first, plus the membership set. Capacity Kout = capacity/2.
    ghost: VecDeque<u64>,
    ghost_set: HashSet<u64>,
    ghost_cap: usize,
    counters: TwoQCounters,
}

impl<T> TwoQRing<T> {
    /// Creates an empty ring of `capacity` frames.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one page");
        Self {
            capacity,
            kin: (capacity / 4).max(1),
            frames: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::with_capacity(capacity.min(1024)),
            a1in: VecDeque::new(),
            protected: 0,
            hand: 0,
            ghost: VecDeque::new(),
            ghost_set: HashSet::new(),
            ghost_cap: (capacity / 2).max(1),
            counters: TwoQCounters::default(),
        }
    }

    /// Number of resident pages.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Snapshot of the 2Q bookkeeping counters.
    pub fn counters(&self) -> TwoQCounters {
        self.counters
    }

    /// True if `page` is resident (touches no access state).
    pub fn contains(&self, page: u64) -> bool {
        self.map.contains_key(&page)
    }

    /// Looks up a resident page as a demand access and returns its frame
    /// index. The second demand access of a probationary frame promotes it
    /// to the protected tier; protected frames get their reference bit.
    pub fn find(&mut self, page: u64) -> Option<usize> {
        let &i = self.map.get(&page)?;
        let f = &mut self.frames[i];
        if f.protected {
            f.referenced = true;
        } else if f.accessed {
            // Second demand access: demonstrated reuse, promote. The stale
            // A1in entry is dropped lazily.
            f.protected = true;
            f.referenced = true;
            self.protected += 1;
            self.counters.reuse_promotions += 1;
        } else {
            f.accessed = true;
        }
        Some(i)
    }

    /// Looks up a resident page as a demand access.
    pub fn get(&mut self, page: u64) -> Option<&mut T> {
        let i = self.find(page)?;
        Some(&mut self.frames[i].payload)
    }

    /// Payload of the frame at `index` (from [`find`](Self::find)).
    pub fn payload_mut(&mut self, index: usize) -> &mut T {
        &mut self.frames[index].payload
    }

    /// Registers `page` in the ring, evicting a victim if at capacity.
    ///
    /// Mirrors [`ClockRing::insert`]: `can_evict` vetoes pinned/dirty
    /// victims, `fresh` allocates a payload for a brand-new frame, and
    /// when every candidate in both tiers is vetoed the ring grows one
    /// overflow frame instead of dead-locking.
    pub fn insert(
        &mut self,
        page: u64,
        class: AdmitClass,
        mut can_evict: impl FnMut(&T) -> bool,
        fresh: impl FnOnce() -> T,
    ) -> Inserted<'_, T> {
        debug_assert!(!self.map.contains_key(&page), "insert of resident page");
        // Only demand fills consult the ghost queue: a remembered id means
        // the probationary tier was too small to observe this page's reuse
        // interval, so it goes straight to the protected tier. Scan fills
        // skip the check *and leave the ghost memory intact* — readahead
        // streaming past a page must not count as reuse.
        let to_protected = class == AdmitClass::Demand && self.ghost_set.remove(&page);
        if to_protected {
            self.counters.ghost_promotions += 1;
        }
        if class == AdmitClass::Scan {
            self.counters.scan_admissions += 1;
        }
        let accessed = class == AdmitClass::Demand;

        let victim = if self.frames.len() < self.capacity {
            None
        } else {
            self.find_victim(&mut can_evict)
        };
        let Some(i) = victim else {
            // Below capacity, or every candidate pinned: grow.
            return self.push_fresh(page, to_protected, accessed, fresh);
        };

        let evicted = self.frames[i].page;
        let was_protected = self.frames[i].protected;
        // Only probationary evictions with demonstrated use earn a ghost
        // entry; an untouched prefetch leaves no trace.
        let remember = !was_protected && self.frames[i].accessed;
        self.map.remove(&evicted);
        if was_protected {
            self.protected -= 1;
            self.counters.protected_evictions += 1;
        } else {
            self.counters.probation_evictions += 1;
            if remember {
                self.ghost_insert(evicted);
            }
        }
        self.map.insert(page, i);
        if to_protected {
            self.protected += 1;
        } else {
            self.a1in.push_back(page);
        }
        let f = &mut self.frames[i];
        f.page = page;
        f.referenced = false;
        f.accessed = accessed;
        f.protected = to_protected;
        Inserted {
            payload: &mut f.payload,
            evicted: Some(evicted),
            fresh: false,
        }
    }

    fn push_fresh(
        &mut self,
        page: u64,
        to_protected: bool,
        accessed: bool,
        fresh: impl FnOnce() -> T,
    ) -> Inserted<'_, T> {
        let i = self.frames.len();
        self.frames.push(Frame2 {
            page,
            referenced: false,
            accessed,
            protected: to_protected,
            payload: fresh(),
        });
        self.map.insert(page, i);
        if to_protected {
            self.protected += 1;
        } else {
            self.a1in.push_back(page);
        }
        Inserted {
            payload: &mut self.frames[i].payload,
            evicted: None,
            fresh: true,
        }
    }

    fn find_victim(&mut self, can_evict: &mut impl FnMut(&T) -> bool) -> Option<usize> {
        // Classic 2Q victim choice: drain the probationary tier while it
        // exceeds its target share (or the protected tier is empty), else
        // run the protected CLOCK. Either way the other tier is the
        // fallback, so a tier full of pinned frames cannot wedge inserts.
        let probation = self.frames.len() - self.protected;
        if probation > self.kin || self.protected == 0 {
            self.probation_victim(can_evict)
                .or_else(|| self.protected_victim(can_evict))
        } else {
            self.protected_victim(can_evict)
                .or_else(|| self.probation_victim(can_evict))
        }
    }

    /// Oldest evictable probationary frame (FIFO). Pinned candidates
    /// rotate to the back so they are retried after their pin drops;
    /// stale entries (promoted or re-registered pages) are dropped.
    fn probation_victim(&mut self, can_evict: &mut impl FnMut(&T) -> bool) -> Option<usize> {
        let mut rotations = self.a1in.len();
        while let Some(p) = self.a1in.pop_front() {
            let Some(&i) = self.map.get(&p) else {
                continue;
            };
            if self.frames[i].protected {
                continue;
            }
            if !can_evict(&self.frames[i].payload) {
                self.a1in.push_back(p);
                if rotations == 0 {
                    return None;
                }
                rotations -= 1;
                continue;
            }
            return Some(i);
        }
        None
    }

    /// Second-chance sweep over the protected tier.
    fn protected_victim(&mut self, can_evict: &mut impl FnMut(&T) -> bool) -> Option<usize> {
        if self.protected == 0 {
            return None;
        }
        let n = self.frames.len();
        for _ in 0..2 * n {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            let f = &mut self.frames[i];
            if !f.protected || !can_evict(&f.payload) {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Some(i);
        }
        None
    }

    fn ghost_insert(&mut self, page: u64) {
        if self.ghost_set.insert(page) {
            self.ghost.push_back(page);
        }
        while self.ghost_set.len() > self.ghost_cap {
            match self.ghost.pop_front() {
                // Stale entries (already promoted out) shrink nothing and
                // are simply discarded.
                Some(p) => {
                    self.ghost_set.remove(&p);
                }
                None => break,
            }
        }
    }

    /// Iterates over every resident frame as `(page id, payload)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        self.frames.iter_mut().map(|f| (f.page, &mut f.payload))
    }

    /// Drops every frame for which `keep` returns false, rebuilding the
    /// page map and tier bookkeeping (probationary FIFO order degrades to
    /// frame order; the ghost queue is kept). The clock hand resets.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        self.frames.retain(|f| keep(&f.payload));
        self.map.clear();
        self.a1in.clear();
        self.protected = 0;
        for (i, f) in self.frames.iter().enumerate() {
            self.map.insert(f.page, i);
            if f.protected {
                self.protected += 1;
            } else {
                self.a1in.push_back(f.page);
            }
        }
        self.hand = 0;
    }
}

/// Policy dispatch over the two ring implementations, so each cache shard
/// carries exactly the ring its [`CachePolicy`] names while the cache code
/// keeps one set of call sites.
#[derive(Debug)]
pub(crate) enum PolicyRing<T> {
    Clock(ClockRing<T>),
    TwoQ(TwoQRing<T>),
}

impl<T> PolicyRing<T> {
    pub fn new(policy: CachePolicy, capacity: usize) -> Self {
        match policy {
            CachePolicy::Clock => PolicyRing::Clock(ClockRing::new(capacity)),
            CachePolicy::TwoQ => PolicyRing::TwoQ(TwoQRing::new(capacity)),
        }
    }

    pub fn contains(&self, page: u64) -> bool {
        match self {
            PolicyRing::Clock(r) => r.contains(page),
            PolicyRing::TwoQ(r) => r.contains(page),
        }
    }

    pub fn find(&mut self, page: u64) -> Option<usize> {
        match self {
            PolicyRing::Clock(r) => r.find(page),
            PolicyRing::TwoQ(r) => r.find(page),
        }
    }

    pub fn get(&mut self, page: u64) -> Option<&mut T> {
        match self {
            PolicyRing::Clock(r) => r.get(page),
            PolicyRing::TwoQ(r) => r.get(page),
        }
    }

    pub fn payload_mut(&mut self, index: usize) -> &mut T {
        match self {
            PolicyRing::Clock(r) => r.payload_mut(index),
            PolicyRing::TwoQ(r) => r.payload_mut(index),
        }
    }

    pub fn insert(
        &mut self,
        page: u64,
        class: AdmitClass,
        can_evict: impl FnMut(&T) -> bool,
        fresh: impl FnOnce() -> T,
    ) -> Inserted<'_, T> {
        match self {
            PolicyRing::Clock(r) => r.insert(page, can_evict, fresh),
            PolicyRing::TwoQ(r) => r.insert(page, class, can_evict, fresh),
        }
    }

    pub fn iter_mut(&mut self) -> Box<dyn Iterator<Item = (u64, &mut T)> + '_> {
        match self {
            PolicyRing::Clock(r) => Box::new(r.iter_mut()),
            PolicyRing::TwoQ(r) => Box::new(r.iter_mut()),
        }
    }

    pub fn retain(&mut self, keep: impl FnMut(&T) -> bool) {
        match self {
            PolicyRing::Clock(r) => r.retain(keep),
            PolicyRing::TwoQ(r) => r.retain(keep),
        }
    }

    /// 2Q bookkeeping counters (zero under CLOCK).
    pub fn twoq_counters(&self) -> TwoQCounters {
        match self {
            PolicyRing::Clock(_) => TwoQCounters::default(),
            PolicyRing::TwoQ(r) => r.counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(capacity: usize) -> TwoQRing<u64> {
        TwoQRing::new(capacity)
    }

    fn demand(r: &mut TwoQRing<u64>, page: u64) {
        if r.contains(page) {
            r.find(page);
        } else {
            *r.insert(page, AdmitClass::Demand, |_| true, || 0).payload = page;
        }
    }

    fn scan(r: &mut TwoQRing<u64>, page: u64) {
        if !r.contains(page) {
            *r.insert(page, AdmitClass::Scan, |_| true, || 0).payload = page;
        }
    }

    #[test]
    fn single_touch_pages_leave_fifo_without_promotion() {
        let mut r = ring(4);
        for p in 0..8 {
            demand(&mut r, p);
        }
        // Capacity 4, eight one-touch fills: the first four are gone and
        // none was promoted.
        assert_eq!(r.len(), 4);
        for p in 0..4 {
            assert!(!r.contains(p), "page {p} should have been evicted FIFO");
        }
        assert_eq!(r.counters().reuse_promotions, 0);
        assert_eq!(r.counters().probation_evictions, 4);
        assert_eq!(r.counters().protected_evictions, 0);
    }

    #[test]
    fn second_access_promotes_and_scans_cannot_evict_protected() {
        let mut r = ring(8);
        // Two demand accesses each: pages 0 and 1 reach the protected tier.
        for p in [0u64, 1] {
            demand(&mut r, p);
            demand(&mut r, p);
        }
        assert_eq!(r.counters().reuse_promotions, 2);
        // A scan far larger than the ring churns only the probationary
        // tier: the protected pages survive untouched.
        for p in 100..164 {
            scan(&mut r, p);
        }
        assert!(r.contains(0), "scan must not evict protected page 0");
        assert!(r.contains(1), "scan must not evict protected page 1");
        assert_eq!(r.counters().protected_evictions, 0);
        assert_eq!(r.counters().scan_admissions, 64);
    }

    #[test]
    fn ghost_queue_promotes_refaulted_pages() {
        let mut r = ring(4);
        demand(&mut r, 7);
        // Push 7 out through the probationary FIFO (one eviction: the
        // bounded ghost queue must still remember it).
        for p in 10..14 {
            demand(&mut r, p);
        }
        assert!(!r.contains(7));
        // Its id is remembered: the re-fault admits straight to protected.
        demand(&mut r, 7);
        assert_eq!(r.counters().ghost_promotions, 1);
        // Protected now: a long scan cannot displace it.
        for p in 100..132 {
            scan(&mut r, p);
        }
        assert!(r.contains(7), "ghost-promoted page must be protected");
    }

    #[test]
    fn untouched_scan_evictions_leave_no_ghost_entry() {
        let mut r = ring(2);
        scan(&mut r, 5);
        // Evict the untouched scan page.
        for p in 10..14 {
            demand(&mut r, p);
        }
        assert!(!r.contains(5));
        // Re-admitting it is a plain probationary admission, not a ghost
        // promotion.
        demand(&mut r, 5);
        assert_eq!(r.counters().ghost_promotions, 0);
    }

    #[test]
    fn pinned_frames_are_skipped_and_overflow_grows() {
        let mut r = ring(2);
        demand(&mut r, 0);
        demand(&mut r, 1);
        // Every frame vetoed: the ring must grow, not spin.
        let ins = r.insert(2, AdmitClass::Demand, |_| false, || 2);
        assert!(ins.fresh);
        assert_eq!(ins.evicted, None);
        assert_eq!(r.len(), 3);
        // With pins released the overflow frame becomes a normal victim.
        let ins = r.insert(3, AdmitClass::Demand, |v| *v != 99, || 3);
        assert!(!ins.fresh);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn selective_pins_rotate_probationary_victims() {
        let mut r = ring(2);
        *r.insert(0, AdmitClass::Demand, |_| true, || 100).payload = 100;
        *r.insert(1, AdmitClass::Demand, |_| true, || 101).payload = 101;
        // Page 0's payload (100) is pinned; the victim must be page 1.
        let ins = r.insert(2, AdmitClass::Demand, |v| *v != 100, || 0);
        assert_eq!(ins.evicted, Some(1));
        assert!(r.contains(0));
    }

    #[test]
    fn ghost_queue_is_bounded() {
        let mut r = ring(4); // ghost capacity = 2
        for p in 0..32 {
            demand(&mut r, p);
        }
        assert!(r.ghost_set.len() <= 2, "ghost must stay bounded");
        // The oldest ghosts were forgotten: re-faulting page 0 is a plain
        // probationary admission.
        demand(&mut r, 0);
        assert_eq!(r.counters().ghost_promotions, 0);
    }

    #[test]
    fn retain_rebuilds_tier_bookkeeping() {
        let mut r = ring(4);
        demand(&mut r, 0);
        demand(&mut r, 0); // promote
        demand(&mut r, 1);
        demand(&mut r, 2);
        r.retain(|v| *v != 1);
        assert!(r.contains(0));
        assert!(!r.contains(1));
        assert!(r.contains(2));
        assert_eq!(r.protected, 1);
        // The ring still works after the rebuild.
        for p in 10..20 {
            demand(&mut r, p);
        }
        assert!(r.contains(0), "protected page survives the rebuild");
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_panics() {
        let _ = ring(0);
    }
}
