//! Simulated disk substrate for the TRANSFORMERS spatial-join reproduction.
//!
//! The paper evaluates *disk-based* spatial joins on 10 kRPM SAS disks with
//! cold caches (§VII-A). This reproduction runs at laptop scale, so the
//! device is simulated instead (see `DESIGN.md`, substitution 1):
//!
//! * all data moves through fixed-size pages ([`DEFAULT_PAGE_SIZE`] =
//!   8 KiB, matching §VII-A) managed by a [`Disk`];
//! * every page access is counted and classified *sequential* vs *random*
//!   by comparing against the previously accessed page id;
//! * a calibrated [`DiskModel`] integrates those accesses into *simulated
//!   I/O time*, which is what the figure reproductions report as "I/O".
//!
//! The effects the paper attributes to the device — PBSM's random reads
//! after scattered partition writes, GIPSY's repeated small reads,
//! TRANSFORMERS reading strictly fewer pages — are all functions of page
//! access counts and their ordering, which this layer captures exactly.
//!
//! Bytes live behind the [`PageStore`] abstraction: [`MemStore`] (default;
//! deterministic and fast) or [`FileStore`] — a real on-disk page image
//! accessed with positional I/O and no global offset lock, fed by the
//! bounded [`PrefetchQueue`] so dedicated I/O threads can keep a queue
//! depth of reads in flight ahead of the workers. Whichever backend is in
//! use, the accounting (and thus every result and every simulated-time
//! figure) is identical; only wall-clock behaviour differs.
//!
//! On top of the disk sit the caching layers every reader goes through:
//! the private per-owner [`BufferPool`], the process-wide lock-striped
//! [`SharedPageCache`] (pinned zero-copy frames + a decoded element-page
//! tier), and the [`PageReads`]/[`CacheHandle`] abstraction that lets
//! index traversals stay agnostic of which one is in use.

#![warn(missing_docs)]

mod buffer;
mod cache;
mod clock;
mod disk;
mod elempage;
mod model;
mod prefetch;
mod redo;
mod shared;
mod stats;
mod store;
mod twoq;

pub use buffer::{BufferPool, DEFAULT_POOL_PAGES};
pub use cache::{CacheHandle, ElemSlice, PageReads, PageSlice, PoolCounters};
pub use disk::{Disk, DiskBackendKind};
pub use elempage::ElementPageCodec;
pub use model::DiskModel;
pub use prefetch::PrefetchQueue;
pub use redo::{LoggedPages, NoopLog, PageWrites, RedoLog};
pub use shared::{
    CacheStats, DecodedOutcome, PageRef, ReadOutcome, SharedPageCache, DEFAULT_CACHE_SHARDS,
};
pub use stats::{IoStats, IoStatsSnapshot};
pub use store::{fnv1a64, is_checksum_mismatch, FileStore, MemStore, PageStore, StoreBackend};
pub use twoq::CachePolicy;

/// Default page size used throughout the reproduction (paper §VII-A: 8 KB).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Identifier of a page on a [`Disk`].
///
/// Page ids are dense: the disk allocates them sequentially, so consecutive
/// ids model physically consecutive disk blocks, which is what the
/// sequential/random classification of the [`DiskModel`] relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel used before any page has been accessed.
    pub(crate) const NONE: u64 = u64::MAX;
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}
