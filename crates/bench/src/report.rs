//! Table printing and CSV output for experiment results.

use crate::runner::Metrics;
use std::io::Write;
use std::path::Path;

/// Formats a duration as seconds with three decimals.
fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints a fixed-width comparison table of metrics, one row per entry.
pub fn print_table(title: &str, rows: &[Metrics]) {
    println!("\n== {title} ==");
    println!(
        "{:<24} {:<22} {:>9} {:>9} {:>3} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "workload",
        "approach",
        "|A|",
        "|B|",
        "bt",
        "build_s",
        "build_cpu",
        "join_s",
        "io_s",
        "pages_read",
        "tests",
        "results"
    );
    for m in rows {
        println!(
            "{:<24} {:<22} {:>9} {:>9} {:>3} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
            m.workload,
            m.approach,
            m.n_a,
            m.n_b,
            m.build_threads,
            secs(m.index_time()),
            secs(m.index_wall),
            secs(m.join_time()),
            secs(m.join_sim_io),
            m.pages_read,
            m.tests,
            m.results
        );
    }
}

/// CSV header matching [`csv_row`].
pub const CSV_HEADER: &str = "workload,approach,n_a,n_b,build_threads,index_wall_s,index_sim_io_s,index_total_s,join_wall_s,join_sim_io_s,join_total_s,pages_read,rand_reads,seq_reads,tests,results,transformations,overhead_wall_s,prefetch_issued,prefetch_hits,prefetch_unused";

/// One CSV row for a metrics record.
pub fn csv_row(m: &Metrics) -> String {
    format!(
        "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{},{},{:.6},{},{},{}",
        m.workload,
        m.approach,
        m.n_a,
        m.n_b,
        m.build_threads,
        m.index_wall.as_secs_f64(),
        m.index_sim_io.as_secs_f64(),
        m.index_time().as_secs_f64(),
        m.join_wall.as_secs_f64(),
        m.join_sim_io.as_secs_f64(),
        m.join_time().as_secs_f64(),
        m.pages_read,
        m.rand_reads,
        m.seq_reads,
        m.tests,
        m.results,
        m.transformations,
        m.overhead_wall.as_secs_f64(),
        m.prefetch_issued,
        m.prefetch_hits,
        m.prefetch_unused,
    )
}

/// Writes metrics to `path` as CSV (creating parent directories).
pub fn write_csv<P: AsRef<Path>>(path: P, rows: &[Metrics]) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{CSV_HEADER}")?;
    for m in rows {
        writeln!(f, "{}", csv_row(m))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> Metrics {
        Metrics {
            approach: "TRANSFORMERS".into(),
            workload: "w".into(),
            n_a: 10,
            n_b: 20,
            index_wall: Duration::from_millis(5),
            index_sim_io: Duration::from_millis(10),
            join_wall: Duration::from_millis(1),
            join_sim_io: Duration::from_millis(2),
            pages_read: 7,
            pool_hits: 0,
            rand_reads: 3,
            seq_reads: 4,
            tests: 99,
            results: 11,
            transformations: 2,
            overhead_wall: Duration::from_micros(100),
            build_threads: 1,
            prefetch_issued: 0,
            prefetch_hits: 0,
            prefetch_unused: 0,
        }
    }

    #[test]
    fn csv_row_has_header_arity() {
        let row = csv_row(&sample());
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tfm_csv_{}", std::process::id()));
        let path = dir.join("out.csv");
        write_csv(&path, &[sample(), sample()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.starts_with("workload,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
