//! Persistent per-workload steal-skew feedback (the closed loop of
//! ROADMAP PR 3's next steps).
//!
//! The parallel join's scheduler picks its initial chunk size from the
//! pivot and worker counts, tilted by a *recorded skew signal* — the
//! [`tfm_exec::ExecReport::steal_fraction`] of a previous run of the same
//! workload. Until now that signal had to be plumbed by hand
//! (`JoinConfig::with_recorded_skew`). [`SkewStore`] closes the loop: a
//! tiny JSON sidecar (`{"workload": fraction, ...}`) that the harness
//! reads before a run and updates after it, so the second run of any
//! workload self-tunes with no caller involvement — see
//! [`crate::run_approach_with_skew`].
//!
//! The JSON subset is deliberately flat (one object, string keys, number
//! values), parsed by a ~40-line reader so the offline build needs no
//! JSON dependency.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A persistent map `workload label -> recorded steal fraction`.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewStore {
    path: PathBuf,
    entries: BTreeMap<String, f64>,
}

impl SkewStore {
    /// Opens the sidecar at `path`, loading any existing entries; a
    /// missing or unreadable file starts an empty store.
    pub fn load<P: AsRef<Path>>(path: P) -> Self {
        let path = path.as_ref().to_path_buf();
        let entries = std::fs::read_to_string(&path)
            .ok()
            .map(|s| parse_flat_json(&s))
            .unwrap_or_default();
        Self { path, entries }
    }

    /// The recorded steal fraction for `workload`, if one was persisted.
    pub fn recorded(&self, workload: &str) -> Option<f64> {
        self.entries.get(workload).copied()
    }

    /// Records the steal fraction observed for `workload` (clamped to
    /// `0.0..=1.0`; call [`SkewStore::save`] to persist).
    pub fn record(&mut self, workload: &str, steal_fraction: f64) {
        self.entries
            .insert(workload.to_string(), steal_fraction.clamp(0.0, 1.0));
    }

    /// Number of recorded workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the sidecar back to its path (creating parent directories).
    pub fn save(&self) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "  \"{}\": {:.6}{}\n",
                escape(k),
                v,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("}\n");
        std::fs::write(&self.path, out)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses the flat `{"key": number, ...}` subset this store writes.
/// Malformed entries are skipped — a corrupt sidecar degrades to "no
/// recorded signal", never to a failed run.
fn parse_flat_json(s: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = s;
    while let Some(open) = rest.find('"') {
        rest = &rest[open + 1..];
        // Scan the key, honouring escapes.
        let mut key = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        key.push(esc);
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => key.push(c),
            }
        }
        let Some(end) = end else { break };
        rest = &rest[end + 1..];
        let Some(colon) = rest.find(':') else { break };
        let value_str = rest[colon + 1..]
            .trim_start()
            .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
            .next()
            .unwrap_or("");
        if let Ok(v) = value_str.parse::<f64>() {
            if v.is_finite() {
                out.insert(key, v);
            }
        }
        rest = &rest[colon + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tfm_skew_{tag}_{}.json", std::process::id()))
    }

    #[test]
    fn roundtrips_entries() {
        let path = temp_path("roundtrip");
        let mut store = SkewStore::load(&path);
        assert!(store.is_empty());
        store.record("uniform_10k", 0.25);
        store.record("clustered \"hot\"", 0.875);
        store.save().unwrap();
        let reloaded = SkewStore::load(&path);
        assert_eq!(reloaded.recorded("uniform_10k"), Some(0.25));
        assert_eq!(reloaded.recorded("clustered \"hot\""), Some(0.875));
        assert_eq!(reloaded.recorded("unknown"), None);
        assert_eq!(reloaded.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clamps_out_of_range_fractions() {
        let mut store = SkewStore::load(temp_path("clamp"));
        store.record("w", 7.0);
        assert_eq!(store.recorded("w"), Some(1.0));
        store.record("w", -3.0);
        assert_eq!(store.recorded("w"), Some(0.0));
    }

    #[test]
    fn missing_and_corrupt_files_degrade_gracefully() {
        let store = SkewStore::load(temp_path("missing"));
        assert!(store.is_empty());
        let path = temp_path("corrupt");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let store = SkewStore::load(&path);
        assert!(store.is_empty());
        // Partially valid entries survive.
        std::fs::write(&path, "{\"good\": 0.5, \"bad\": oops}").unwrap();
        let store = SkewStore::load(&path);
        assert_eq!(store.recorded("good"), Some(0.5));
        assert_eq!(store.recorded("bad"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn updates_overwrite() {
        let path = temp_path("update");
        let mut store = SkewStore::load(&path);
        store.record("w", 0.1);
        store.save().unwrap();
        let mut store = SkewStore::load(&path);
        store.record("w", 0.9);
        store.save().unwrap();
        assert_eq!(SkewStore::load(&path).recorded("w"), Some(0.9));
        std::fs::remove_file(&path).ok();
    }
}
