//! Harness for the query-serving workload (`tfm-serve`): builds an index,
//! replays a query trace, and reports comparable [`ServeMetrics`] —
//! the serving-side counterpart of [`crate::run_approach`].

use crate::runner::RunConfig;
use std::time::Duration;
use tfm_geom::{ElementId, SpatialElement, SpatialQuery};
use tfm_serve::{
    serve_trace, GipsyEngine, QueryEngine, RtreeEngine, ServeConfig, ServeStats, TransformersEngine,
};
use tfm_storage::{Disk, SharedPageCache};
use transformers::{IndexBuildPipeline, IndexConfig, TransformersIndex};

/// Which structure serves the trace (Approach-style labels for tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEngineKind {
    /// The TRANSFORMERS hierarchy (node/unit MBB prefilter + page reads).
    Transformers,
    /// The GIPSY strategy: per-probe directed walk + crawl at element
    /// granularity.
    Gipsy,
    /// The STR-bulk-loaded R-tree baseline.
    Rtree,
}

impl ServeEngineKind {
    /// Short label for tables, matching the join harness's vocabulary.
    pub fn label(&self) -> &'static str {
        match self {
            ServeEngineKind::Transformers => "TRANSFORMERS",
            ServeEngineKind::Gipsy => "GIPSY",
            ServeEngineKind::Rtree => "R-TREE",
        }
    }

    /// All three engines, for sweep-style comparisons.
    pub fn all() -> [ServeEngineKind; 3] {
        [
            ServeEngineKind::Transformers,
            ServeEngineKind::Gipsy,
            ServeEngineKind::Rtree,
        ]
    }
}

/// Comparable measurements of one (engine, trace) serve run.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Workload label.
    pub workload: String,
    /// Engine label.
    pub engine: String,
    /// Indexed elements.
    pub n_elements: usize,
    /// Queries replayed.
    pub queries: u64,
    /// Serve workers.
    pub threads: usize,
    /// Batch size.
    pub batch: usize,
    /// Whether batches were Hilbert-ordered.
    pub hilbert_batching: bool,
    /// Wall-clock serve time.
    pub wall: Duration,
    /// Simulated device time of the serve phase.
    pub sim_io: Duration,
    /// Queries per wall-clock second.
    pub qps: f64,
    /// Median per-query latency.
    pub p50: Duration,
    /// 95th-percentile per-query latency.
    pub p95: Duration,
    /// 99th-percentile per-query latency.
    pub p99: Duration,
    /// Median queue wait (batch admission to worker pop; zero on the
    /// single-threaded inline path).
    pub queue_wait_p50: Duration,
    /// 99th-percentile queue wait.
    pub queue_wait_p99: Duration,
    /// Pages read from disk during the serve phase.
    pub pages_read: u64,
    /// Sequential page reads.
    pub seq_reads: u64,
    /// Random page reads.
    pub rand_reads: u64,
    /// Page-cache hits over all worker sessions.
    pub pool_hits: u64,
    /// Page-cache misses over all worker sessions.
    pub pool_misses: u64,
    /// Whether the run served through the shared page cache (`false` =
    /// private-pool ablation).
    pub shared_cache: bool,
    /// Decoded-tier hits of the shared cache (0 for private pools).
    pub decoded_hits: u64,
    /// Decoded-tier misses of the shared cache (0 for private pools).
    pub decoded_misses: u64,
    /// Shard-lock acquisitions of the shared cache.
    pub lock_acquisitions: u64,
    /// Contended shard-lock acquisitions of the shared cache.
    pub lock_contended: u64,
    /// Pages the prefetch pipeline landed into cache frames (0 with
    /// readahead off or private pools).
    pub prefetch_issued: u64,
    /// Demand reads served by a prefetched frame — kept disjoint from
    /// `pool_hits`/`pool_misses`, so readahead cannot inflate the
    /// hit-fraction gates.
    pub prefetch_hits: u64,
    /// Prefetched frames evicted before any demand read used them.
    pub prefetch_unused: u64,
    /// Prefetch I/O threads the run was configured with.
    pub io_depth: usize,
    /// Readahead window in pages (0 = prefetch pipeline off).
    pub readahead: usize,
    /// Shared-cache eviction policy label (`clock` or `2q`).
    pub cache_policy: String,
    /// Retune decisions of the self-tuning batch loop (0 with
    /// `--auto-batch` off or on the inline path).
    pub autobatch_retunes: u64,
    /// Retunes that grew the batch.
    pub autobatch_grows: u64,
    /// Retunes that shrank the batch.
    pub autobatch_shrinks: u64,
    /// Batch size in effect at end of trace (0 with auto-batch off).
    pub autobatch_final_batch: usize,
    /// Result ids returned, summed over the trace.
    pub result_ids: u64,
}

impl ServeMetrics {
    /// Fraction of page reads classified sequential.
    pub fn seq_read_fraction(&self) -> f64 {
        let total = self.seq_reads + self.rand_reads;
        if total == 0 {
            return 0.0;
        }
        self.seq_reads as f64 / total as f64
    }

    /// Page-cache hit fraction over all worker sessions.
    pub fn pool_hit_fraction(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            return 0.0;
        }
        self.pool_hits as f64 / total as f64
    }

    fn from_stats(
        kind: ServeEngineKind,
        workload: &str,
        n_elements: usize,
        cfg: &ServeConfig,
        stats: &ServeStats,
    ) -> Self {
        Self {
            workload: workload.to_string(),
            engine: kind.label().to_string(),
            n_elements,
            queries: stats.queries,
            threads: cfg.threads.max(1),
            batch: cfg.batch.max(1),
            hilbert_batching: cfg.hilbert_batching,
            wall: stats.wall,
            sim_io: stats.io.sim_io_time(),
            qps: stats.throughput_qps(),
            p50: stats.latency.p50(),
            p95: stats.latency.p95(),
            p99: stats.latency.p99(),
            queue_wait_p50: stats.queue_wait.p50(),
            queue_wait_p99: stats.queue_wait.p99(),
            pages_read: stats.io.reads(),
            seq_reads: stats.io.seq_reads,
            rand_reads: stats.io.rand_reads,
            pool_hits: stats.pool_hits,
            pool_misses: stats.pool_misses,
            shared_cache: stats.cache.is_some(),
            decoded_hits: stats.cache.map_or(0, |c| c.decoded_hits),
            decoded_misses: stats.cache.map_or(0, |c| c.decoded_misses),
            lock_acquisitions: stats.cache.map_or(0, |c| c.lock_acquisitions),
            lock_contended: stats.cache.map_or(0, |c| c.lock_contended),
            prefetch_issued: stats.cache.map_or(0, |c| c.prefetch_issued),
            prefetch_hits: stats.cache.map_or(0, |c| c.prefetch_hits),
            prefetch_unused: stats.cache.map_or(0, |c| c.prefetch_unused),
            io_depth: cfg.io_depth.max(1),
            readahead: cfg.readahead,
            cache_policy: cfg.cache_policy.to_string(),
            autobatch_retunes: stats.autobatch.map_or(0, |a| a.retunes),
            autobatch_grows: stats.autobatch.map_or(0, |a| a.grows),
            autobatch_shrinks: stats.autobatch.map_or(0, |a| a.shrinks),
            autobatch_final_batch: stats.autobatch.map_or(0, |a| a.final_batch),
            result_ids: stats.result_ids,
        }
    }
}

/// Builds the `kind` structure over `elements` on a fresh in-memory disk
/// and hands the serving engine (plus the disk, for stats resets) to `f`.
///
/// `serve_cfg` decides the engine's cache mode: shared engines get one
/// process-wide cache of `serve_cfg.pool_pages` pages, sharded for
/// `serve_cfg.threads`; otherwise sessions own private pools.
fn with_engine<R>(
    kind: ServeEngineKind,
    elements: &[SpatialElement],
    run_cfg: &RunConfig,
    serve_cfg: &ServeConfig,
    f: impl FnOnce(&dyn QueryEngine, &Disk) -> R,
) -> R {
    let disk = run_cfg.disk("serve");
    let idx_cfg = IndexConfig::default().with_build_threads(run_cfg.build_threads);
    let shards = SharedPageCache::shards_for_threads(serve_cfg.threads);
    let cache_pages = serve_cfg.pool_pages.max(1);
    match kind {
        ServeEngineKind::Transformers => {
            let idx = TransformersIndex::build(&disk, elements.to_vec(), &idx_cfg);
            let mut engine = TransformersEngine::new(&idx, &disk);
            if serve_cfg.shared_cache {
                engine =
                    engine.with_shared_cache_policy(cache_pages, shards, serve_cfg.cache_policy);
            }
            f(&engine, &disk)
        }
        ServeEngineKind::Gipsy => {
            let idx = TransformersIndex::build(&disk, elements.to_vec(), &idx_cfg);
            let mut engine = GipsyEngine::new(&idx, &disk);
            if serve_cfg.shared_cache {
                engine =
                    engine.with_shared_cache_policy(cache_pages, shards, serve_cfg.cache_policy);
            }
            f(&engine, &disk)
        }
        ServeEngineKind::Rtree => {
            let pipeline = IndexBuildPipeline::new(run_cfg.build_threads);
            let tree = tfm_rtree::RTree::bulk_load_pipelined(&disk, elements.to_vec(), &pipeline);
            let mut engine = RtreeEngine::new(&tree, &disk);
            if serve_cfg.shared_cache {
                engine =
                    engine.with_shared_cache_policy(cache_pages, shards, serve_cfg.cache_policy);
            }
            f(&engine, &disk)
        }
    }
}

/// Builds the `kind` structure over `elements` (on a fresh in-memory disk
/// with `run_cfg`'s page size and build threads), replays `trace` with
/// `serve_cfg`, and returns the metrics plus every query's result ids
/// (ascending; for correctness checks).
pub fn run_serve(
    kind: ServeEngineKind,
    workload: &str,
    elements: &[SpatialElement],
    trace: &[SpatialQuery],
    run_cfg: &RunConfig,
    serve_cfg: &ServeConfig,
) -> (ServeMetrics, Vec<Vec<ElementId>>) {
    let (metrics, results, _) =
        run_serve_traced(kind, workload, elements, trace, run_cfg, serve_cfg);
    (metrics, results)
}

/// [`run_serve`] additionally returning one [`tfm_obs::QueryTrace`] per
/// query (trace-ID order): per-query queue-wait/service split and pool
/// attribution. Forces [`ServeConfig::collect_traces`] on for the run.
pub fn run_serve_traced(
    kind: ServeEngineKind,
    workload: &str,
    elements: &[SpatialElement],
    trace: &[SpatialQuery],
    run_cfg: &RunConfig,
    serve_cfg: &ServeConfig,
) -> (ServeMetrics, Vec<Vec<ElementId>>, Vec<tfm_obs::QueryTrace>) {
    with_engine(kind, elements, run_cfg, serve_cfg, |engine, disk| {
        disk.reset_stats();
        let cfg = serve_cfg.with_traces();
        let outcome = serve_trace(engine, trace, &cfg);
        let metrics =
            ServeMetrics::from_stats(kind, workload, elements.len(), &cfg, &outcome.stats);
        (metrics, outcome.results, outcome.traces)
    })
}

/// One entry of a [`run_serve_sweep`]: a labelled trace plus the serve
/// configuration to replay it with.
pub struct ServeJob<'a> {
    /// Workload label for the metrics row.
    pub workload: &'a str,
    /// The query trace to replay.
    pub trace: &'a [SpatialQuery],
    /// Worker/batch configuration.
    pub config: ServeConfig,
}

/// [`run_serve`] over several jobs sharing one index build: the `kind`
/// structure is built **once** and every job replays against it (disk
/// stats and the shared cache reset between jobs, so each row starts
/// cold). Use this for config sweeps — rebuilding a large index per
/// (threads, batching) combination would dominate the run.
///
/// The engine's cache mode (and the cache size / shard count) is taken
/// from the **first** job's config; jobs in one sweep share one engine,
/// so they must agree on the mode.
pub fn run_serve_sweep(
    kind: ServeEngineKind,
    elements: &[SpatialElement],
    run_cfg: &RunConfig,
    jobs: &[ServeJob<'_>],
) -> Vec<ServeMetrics> {
    // The engine (and its shared cache) is built once for the whole
    // sweep: take the first job's config but size the cache's sharding
    // for the *largest* worker count any job will run with, so
    // multi-thread rows are not measured against a cache striped for one
    // reader.
    let mut engine_cfg = jobs.first().map(|j| j.config).unwrap_or_default();
    engine_cfg.threads = jobs.iter().map(|j| j.config.threads).max().unwrap_or(1);
    debug_assert!(
        jobs.iter()
            .all(|j| j.config.shared_cache == engine_cfg.shared_cache
                && j.config.pool_pages == engine_cfg.pool_pages),
        "jobs of one sweep share an engine and must agree on cache mode and budget"
    );
    with_engine(kind, elements, run_cfg, &engine_cfg, |engine, disk| {
        jobs.iter()
            .map(|job| {
                disk.reset_stats();
                engine.reset_cache();
                let outcome = serve_trace(engine, job.trace, &job.config);
                ServeMetrics::from_stats(
                    kind,
                    job.workload,
                    elements.len(),
                    &job.config,
                    &outcome.stats,
                )
            })
            .collect()
    })
}

/// Prints a fixed-width comparison table of serve metrics.
pub fn print_serve_table(title: &str, rows: &[ServeMetrics]) {
    println!("\n== {title} ==");
    println!(
        "{:<20} {:<14} {:>8} {:>8} {:>3} {:>6} {:>3} {:>5} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "workload",
        "engine",
        "|D|",
        "queries",
        "w",
        "batch",
        "hb",
        "cache",
        "qps",
        "p50_us",
        "p99_us",
        "pages",
        "seq%",
        "hit%",
        "results"
    );
    for m in rows {
        println!(
            "{:<20} {:<14} {:>8} {:>8} {:>3} {:>6} {:>3} {:>5} {:>10.0} {:>10.1} {:>10.1} {:>10} {:>8.1} {:>8.1} {:>10}",
            m.workload,
            m.engine,
            m.n_elements,
            m.queries,
            m.threads,
            m.batch,
            if m.hilbert_batching { "on" } else { "off" },
            if m.shared_cache { "shrd" } else { "priv" },
            m.qps,
            m.p50.as_secs_f64() * 1e6,
            m.p99.as_secs_f64() * 1e6,
            m.pages_read,
            m.seq_read_fraction() * 100.0,
            m.pool_hit_fraction() * 100.0,
            m.result_ids
        );
    }
}

/// CSV header matching [`serve_csv_row`].
pub const SERVE_CSV_HEADER: &str = "workload,engine,n_elements,queries,threads,batch,hilbert_batching,shared_cache,wall_s,sim_io_s,qps,p50_us,p95_us,p99_us,queue_wait_p50_us,queue_wait_p99_us,pages_read,seq_reads,rand_reads,pool_hits,pool_misses,decoded_hits,decoded_misses,lock_acquisitions,lock_contended,prefetch_issued,prefetch_hits,prefetch_unused,io_depth,readahead,cache_policy,autobatch_retunes,autobatch_grows,autobatch_shrinks,autobatch_final_batch,result_ids";

/// One CSV row for a serve-metrics record.
pub fn serve_csv_row(m: &ServeMetrics) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{:.6},{:.6},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        m.workload,
        m.engine,
        m.n_elements,
        m.queries,
        m.threads,
        m.batch,
        m.hilbert_batching,
        m.shared_cache,
        m.wall.as_secs_f64(),
        m.sim_io.as_secs_f64(),
        m.qps,
        m.p50.as_secs_f64() * 1e6,
        m.p95.as_secs_f64() * 1e6,
        m.p99.as_secs_f64() * 1e6,
        m.queue_wait_p50.as_secs_f64() * 1e6,
        m.queue_wait_p99.as_secs_f64() * 1e6,
        m.pages_read,
        m.seq_reads,
        m.rand_reads,
        m.pool_hits,
        m.pool_misses,
        m.decoded_hits,
        m.decoded_misses,
        m.lock_acquisitions,
        m.lock_contended,
        m.prefetch_issued,
        m.prefetch_hits,
        m.prefetch_unused,
        m.io_depth,
        m.readahead,
        m.cache_policy,
        m.autobatch_retunes,
        m.autobatch_grows,
        m.autobatch_shrinks,
        m.autobatch_final_batch,
        m.result_ids,
    )
}

/// Writes serve metrics to `path` as CSV (creating parent directories).
pub fn write_serve_csv<P: AsRef<std::path::Path>>(
    path: P,
    rows: &[ServeMetrics],
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{SERVE_CSV_HEADER}")?;
    for m in rows {
        writeln!(f, "{}", serve_csv_row(m))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, generate_trace, DatasetSpec, QueryTraceSpec};

    #[test]
    fn engines_serve_identical_results() {
        let elements = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(2500, 90)
        });
        let trace = generate_trace(&QueryTraceSpec::uniform(150, 91));
        let run_cfg = RunConfig::default();
        let serve_cfg = ServeConfig::default().with_threads(2);
        let mut reference: Option<Vec<Vec<ElementId>>> = None;
        for kind in ServeEngineKind::all() {
            let (m, results) = run_serve(kind, "t", &elements, &trace, &run_cfg, &serve_cfg);
            assert_eq!(m.queries, 150, "{}", kind.label());
            assert_eq!(m.engine, kind.label());
            assert!(m.pages_read > 0);
            match &reference {
                None => reference = Some(results),
                Some(r) => assert_eq!(&results, r, "{} diverges", kind.label()),
            }
        }
    }

    #[test]
    fn csv_row_has_header_arity() {
        let elements = generate(&DatasetSpec::uniform(400, 92));
        let trace = generate_trace(&QueryTraceSpec::uniform(20, 93));
        let (m, _) = run_serve(
            ServeEngineKind::Transformers,
            "t",
            &elements,
            &trace,
            &RunConfig::default(),
            &ServeConfig::default(),
        );
        assert_eq!(
            serve_csv_row(&m).split(',').count(),
            SERVE_CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn csv_file_roundtrip() {
        let elements = generate(&DatasetSpec::uniform(400, 94));
        let trace = generate_trace(&QueryTraceSpec::uniform(20, 95));
        let (m, _) = run_serve(
            ServeEngineKind::Rtree,
            "t",
            &elements,
            &trace,
            &RunConfig::default(),
            &ServeConfig::default(),
        );
        let dir = std::env::temp_dir().join(format!("tfm_serve_csv_{}", std::process::id()));
        let path = dir.join("serve.csv");
        write_serve_csv(&path, &[m]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.starts_with("workload,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
