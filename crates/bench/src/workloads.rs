//! Workload definitions matching the paper's evaluation datasets (§VII-B).

use tfm_datagen::{generate, neuro, DatasetSpec, Distribution};
use tfm_geom::SpatialElement;

/// A named pair of datasets to be joined.
pub struct Workload {
    /// Human-readable label (appears in tables/CSVs).
    pub name: String,
    /// Dataset A.
    pub a: Vec<SpatialElement>,
    /// Dataset B.
    pub b: Vec<SpatialElement>,
}

/// Element box size used by the synthetic workloads. The paper draws sides
/// from `(0, 1]` in a 1000³ universe at 10⁸–10⁹ elements; at laptop scale
/// we keep the universe and enlarge the boxes so join selectivity stays
/// comparable.
pub const BOX_SIDE: f64 = 4.0;

fn spec(count: usize, distribution: Distribution, seed: u64) -> DatasetSpec {
    DatasetSpec {
        max_side: BOX_SIDE,
        ..DatasetSpec::with_distribution(count, distribution, seed)
    }
}

/// Fig. 1 / Fig. 10: nine pairs of uniform datasets whose density ratio
/// sweeps three orders of magnitude — |A| rises from `lo` to `hi` while
/// |B| falls from `hi` to `lo`.
pub fn robustness_pairs(lo: usize, hi: usize) -> Vec<Workload> {
    let steps = 9usize;
    let factor = (hi as f64 / lo as f64).powf(1.0 / (steps - 1) as f64);
    (0..steps)
        .map(|i| {
            let na = (lo as f64 * factor.powi(i as i32)).round() as usize;
            let nb = (lo as f64 * factor.powi((steps - 1 - i) as i32)).round() as usize;
            Workload {
                name: format!("A={na} B={nb}"),
                a: generate(&spec(na, Distribution::Uniform, 1000 + i as u64)),
                b: generate(&spec(nb, Distribution::Uniform, 2000 + i as u64)),
            }
        })
        .collect()
}

/// Fig. 11: DenseCluster × UniformCluster at a given total size (split
/// evenly, as in the paper's "elements in datasets" axis).
pub fn nonuniform_pair(total: usize, seed: u64) -> Workload {
    let half = total / 2;
    Workload {
        name: format!("{total}"),
        a: generate(&spec(half, scaled_dense_cluster(half), seed)),
        b: generate(&spec(half, scaled_uniform_cluster(half), seed + 1)),
    }
}

/// Table I: Uniform × Uniform at a given total size.
pub fn uniform_pair(total: usize, seed: u64) -> Workload {
    let half = total / 2;
    Workload {
        name: format!("{total}"),
        a: generate(&spec(half, Distribution::Uniform, seed)),
        b: generate(&spec(half, Distribution::Uniform, seed + 1)),
    }
}

/// Fig. 12: the neuroscience surrogate (axons × dendrites, 60/40).
pub fn neuro_pair(total: usize, seed: u64) -> Workload {
    let (a, b) = neuro::axon_dendrite_pair(total, seed);
    Workload {
        name: format!("{total}"),
        a,
        b,
    }
}

/// Fig. 13/14: MassiveCluster × MassiveCluster (skew grows with size).
///
/// Each dataset packs half its elements into 5 small dense clusters and
/// spreads the rest uniformly (the paper's MassiveCluster keeps 5 dense
/// clusters inside a larger dataset). The cluster locations differ between
/// A and B, so the join constantly meets areas where one side is locally
/// 100× denser than the other — the regime where transformations pay off.
pub fn massive_pair(total: usize, seed: u64) -> Workload {
    let half = total / 2;
    let dist = Distribution::MassiveCluster {
        clusters: 5,
        elements_per_cluster: half / 10,
    };
    Workload {
        name: format!("{total}"),
        a: generate(&spec(half, dist, seed)),
        b: generate(&spec(half, dist, seed + 1)),
    }
}

/// Fig. 13 (right) also uses UniformCluster × DenseCluster and
/// Uniform × Uniform at one size; this builds the three distribution pairs.
pub fn threshold_workloads(total: usize, seed: u64) -> Vec<Workload> {
    let half = total / 2;
    vec![
        Workload {
            name: "MassiveCluster".into(),
            a: generate(&spec(half, Distribution::massive_cluster_for(half), seed)),
            b: generate(&spec(
                half,
                Distribution::massive_cluster_for(half),
                seed + 1,
            )),
        },
        Workload {
            name: "UniformVsDenseCluster".into(),
            a: generate(&spec(half, scaled_uniform_cluster(half), seed + 2)),
            b: generate(&spec(half, scaled_dense_cluster(half), seed + 3)),
        },
        Workload {
            name: "Uniform".into(),
            a: generate(&spec(half, Distribution::Uniform, seed + 4)),
            b: generate(&spec(half, Distribution::Uniform, seed + 5)),
        },
    ]
}

/// The paper's ≈700 dense clusters assume 10⁸ elements; scale the cluster
/// count down with the dataset so each cluster stays meaningfully dense.
fn scaled_dense_cluster(count: usize) -> Distribution {
    Distribution::DenseCluster {
        clusters: (count / 700).clamp(20, 700),
    }
}

/// Same scaling for the 100 wide clusters of UniformCluster.
fn scaled_uniform_cluster(count: usize) -> Distribution {
    Distribution::UniformCluster {
        clusters: (count / 5000).clamp(10, 100),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_sweep_shape() {
        let pairs = robustness_pairs(100, 10_000);
        assert_eq!(pairs.len(), 9);
        assert_eq!(pairs[0].a.len(), 100);
        assert_eq!(pairs[0].b.len(), 10_000);
        assert_eq!(pairs[8].a.len(), 10_000);
        assert_eq!(pairs[8].b.len(), 100);
        // The middle pair is balanced.
        assert_eq!(pairs[4].a.len(), pairs[4].b.len());
    }

    #[test]
    fn pairs_split_totals() {
        let w = uniform_pair(10_000, 1);
        assert_eq!(w.a.len() + w.b.len(), 10_000);
        let w = neuro_pair(10_000, 1);
        assert_eq!(w.a.len() + w.b.len(), 10_000);
    }

    #[test]
    fn threshold_workloads_cover_three_distributions() {
        let ws = threshold_workloads(2000, 5);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].name, "MassiveCluster");
        assert_eq!(ws[2].name, "Uniform");
    }
}
