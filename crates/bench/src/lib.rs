//! Experiment harness reproducing the paper's evaluation (§VII).
//!
//! Each binary in `src/bin/` regenerates one table or figure:
//!
//! | binary                 | paper artefact                                  |
//! |------------------------|-------------------------------------------------|
//! | `fig10_robustness`     | Fig. 1 / Fig. 10 — join time vs density ratio    |
//! | `fig11_nonuniform`     | Fig. 11 — indexing, join breakdown, #tests       |
//! | `table1_uniform`       | Table I — uniform-distribution join times        |
//! | `fig12_neuro`          | Fig. 12 — neuroscience workload                  |
//! | `fig13_transformations`| Fig. 13 — transformation impact & thresholds     |
//! | `fig14_overhead`       | Fig. 14 — adaptive exploration overhead          |
//! | `all_experiments`      | everything above, CSVs into `results/`           |
//!
//! Scale: dataset sizes default to laptop scale and multiply by the
//! `TFM_SCALE` environment variable (e.g. `TFM_SCALE=4` for 4× larger
//! runs). "Join time" columns report *simulated device time + measured
//! CPU time* — see `DESIGN.md` substitution 1.

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod serve;
pub mod shard;
pub mod skew;
pub mod workloads;

pub use report::{print_table, write_csv};
pub use runner::{run_approach, run_approach_with_skew, Approach, Metrics, RunConfig};
pub use serve::{
    print_serve_table, run_serve, run_serve_sweep, run_serve_traced, write_serve_csv,
    ServeEngineKind, ServeJob, ServeMetrics,
};
pub use shard::{print_shard_table, run_serve_sharded, ShardMetrics};
pub use skew::SkewStore;

/// Reads the scale multiplier from `TFM_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("TFM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Applies the global scale to a base element count.
pub fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).round().max(1.0) as usize
}

/// The host's CPU model string (`/proc/cpuinfo` on Linux), so checked-in
/// bench artifacts document the hardware they came from.
pub fn host_cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}
