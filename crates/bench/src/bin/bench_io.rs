//! Real file storage backend gate — positional I/O, prefetch queue depth
//! and Hilbert-driven readahead.
//!
//! Four cold-cache serve runs of the TRANSFORMERS engine over one
//! workload, all required to return byte-identical results:
//!
//! 1. **mem** — the in-memory [`StoreBackend::Mem`] reference.
//! 2. **file** — [`StoreBackend::File`]: a real on-disk page image read
//!    with positional I/O, no latency injection. Proves the backend
//!    itself changes nothing but where the bytes live.
//! 3. **file, depth 1** — the file backend with device read latency
//!    injected ([`RunConfig::read_latency`] scales the
//!    [`tfm_storage::DiskModel`] cost onto the reading thread), **no**
//!    readahead: every cold miss pays its latency on a worker's critical
//!    path. This is the gate's denominator.
//! 4. **file, depth ≥ 4 + readahead** — same latency, but a prefetch
//!    pipeline (`--io-depth` dedicated I/O threads fed by the batches'
//!    Hilbert-ordered page schedule) keeps a queue depth of reads in
//!    flight. Latency is paid overlapped and off the workers, so
//!    cold-cache wall-clock throughput must beat run 3 by ≥ 1.3×.
//!
//! Results go to `BENCH_io.json` (flat hand-rolled JSON, host-provenance
//! fields included); the process exits non-zero when a gate fails. Scale
//! with `TFM_SCALE`; `--dir PATH` picks where page images are written
//! (point it at a disk-backed directory to exercise real device I/O, or
//! tmpfs for determinism), `--out PATH` the report path.

use std::fmt::Write as _;
use tfm_bench::{run_serve, scaled, RunConfig, ServeEngineKind, ServeMetrics};
use tfm_datagen::{generate, generate_trace, DatasetSpec, QueryTraceSpec};
use tfm_serve::ServeConfig;
use tfm_storage::StoreBackend;

/// Queue depth of the readahead run (gate numerator).
const IO_DEPTH: usize = 8;
/// Readahead window in pages of the readahead run.
const READAHEAD: usize = 512;
/// Device-latency injection scale for the throttled runs: large enough
/// that cold-miss latency dominates the serve wall clock (that is the
/// regime the paper's 10 kRPM SAS experiments run in), small enough that
/// the bench stays seconds, not minutes.
const LATENCY: f64 = 0.25;

fn arg(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn json_row(out: &mut String, label: &str, latency: f64, m: &ServeMetrics) {
    let _ = write!(
        out,
        "    {{\"run\": \"{}\", \"read_latency\": {}, \"io_depth\": {}, \"readahead\": {}, \
         \"wall_s\": {:.6}, \"qps\": {:.1}, \"pages_read\": {}, \"pool_hits\": {}, \
         \"pool_misses\": {}, \"prefetch_issued\": {}, \"prefetch_hits\": {}, \
         \"prefetch_unused\": {}, \"hit_fraction\": {:.4}, \"sim_io_s\": {:.6}}}",
        label,
        latency,
        m.io_depth,
        m.readahead,
        m.wall.as_secs_f64(),
        m.qps,
        m.pages_read,
        m.pool_hits,
        m.pool_misses,
        m.prefetch_issued,
        m.prefetch_hits,
        m.prefetch_unused,
        m.pool_hit_fraction(),
        m.sim_io.as_secs_f64(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg(&args, "--out", "BENCH_io.json");
    let default_dir = std::env::temp_dir()
        .join(format!("tfm_bench_io_{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let dir = std::path::PathBuf::from(arg(&args, "--dir", &default_dir));

    let dataset = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(scaled(20_000), 81)
    });
    let trace = generate_trace(&QueryTraceSpec::uniform(scaled(1_500), 82));

    // Every run builds its engine fresh (cold cache, cold pools); the
    // serve phase itself is what the rows time.
    let serve_base = ServeConfig::default().with_threads(2).with_batch(64);
    let run = |backend: StoreBackend, latency: f64, io_depth: usize, readahead: usize| {
        let run_cfg = RunConfig {
            backend,
            read_latency: latency,
            ..RunConfig::default()
        };
        let serve_cfg = serve_base.with_io_depth(io_depth).with_readahead(readahead);
        run_serve(
            ServeEngineKind::Transformers,
            "io-backend",
            &dataset,
            &trace,
            &run_cfg,
            &serve_cfg,
        )
    };

    let (mem, mem_results) = run(StoreBackend::Mem, 0.0, 1, 0);
    let (file_raw, file_raw_results) = run(StoreBackend::File(dir.clone()), 0.0, 1, 0);
    let (depth1, depth1_results) = run(StoreBackend::File(dir.clone()), LATENCY, 1, 0);
    let (ra, ra_results) = run(
        StoreBackend::File(dir.clone()),
        LATENCY,
        IO_DEPTH,
        READAHEAD,
    );

    let outputs_identical = file_raw_results == mem_results
        && depth1_results == mem_results
        && ra_results == mem_results;
    let speedup = if ra.wall.as_secs_f64() > 0.0 {
        depth1.wall.as_secs_f64() / ra.wall.as_secs_f64()
    } else {
        0.0
    };

    let gates = [
        ("outputs_identical", outputs_identical),
        ("readahead_speedup_1_3x", speedup >= 1.3),
        (
            "prefetch_pipeline_used",
            ra.prefetch_issued > 0 && ra.prefetch_hits > 0,
        ),
        (
            "prefetch_stays_out_of_hit_counters",
            ra.pool_hits + ra.pool_misses + ra.prefetch_hits
                >= depth1.pool_hits + depth1.pool_misses,
        ),
    ];

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu_model = tfm_bench::host_cpu_model();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {},", tfm_bench::scale());
    let _ = writeln!(
        json,
        "  \"host\": {{\"threads\": {host_threads}, \"cpu_model\": \"{cpu_model}\"}},"
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset_elements\": {}, \"queries\": {}, \"store_dir\": \"{}\"}},",
        dataset.len(),
        trace.len(),
        dir.display()
    );
    let _ = writeln!(json, "  \"readahead_speedup\": {speedup:.3},");
    json.push_str("  \"rows\": [\n");
    let rows: [(&str, f64, &ServeMetrics); 4] = [
        ("mem", 0.0, &mem),
        ("file", 0.0, &file_raw),
        ("file-depth1", LATENCY, &depth1),
        ("file-readahead", LATENCY, &ra),
    ];
    for (i, (label, latency, m)) in rows.iter().enumerate() {
        json_row(&mut json, label, *latency, m);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"gates\": {\n");
    for (i, (name, ok)) in gates.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {ok}");
        json.push_str(if i + 1 < gates.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_io.json");

    println!("== file storage backend: queue depth + Hilbert readahead ==");
    println!(
        "mem {:.3}s | file {:.3}s | file+latency depth1 {:.3}s | depth{} readahead{} {:.3}s",
        mem.wall.as_secs_f64(),
        file_raw.wall.as_secs_f64(),
        depth1.wall.as_secs_f64(),
        IO_DEPTH,
        READAHEAD,
        ra.wall.as_secs_f64(),
    );
    println!(
        "readahead speedup {speedup:.2}x (gate >= 1.3x); prefetch issued {} hit {} unused {}",
        ra.prefetch_issued, ra.prefetch_hits, ra.prefetch_unused
    );
    let mut failed = false;
    for (name, ok) in gates {
        println!("gate {name}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    }
    println!("wrote {out_path}");
    // Only remove page images this run created itself.
    if arg(&args, "--dir", &default_dir) == default_dir {
        std::fs::remove_dir_all(&dir).ok();
    }
    if failed {
        std::process::exit(1);
    }
}
