//! Fig. 14 reproduction: adaptive exploration overhead on MassiveCluster
//! datasets — the join time is broken into *join cost* (disk access +
//! in-memory joining of the final candidate set) and *overhead* (walking,
//! crawling, filtering, transformation decisions).
//!
//! The paper reports the overhead at ~17 % of join execution on average.

use tfm_bench::workloads::massive_pair;
use tfm_bench::{run_approach, scaled, write_csv, Approach, RunConfig};

fn main() {
    let cfg = RunConfig::default();
    // Paper: 50 M–350 M elements; here ÷ 1000.
    let sizes = [50_000, 150_000, 250_000, 350_000];

    let mut rows = Vec::new();
    println!("\n== Fig. 14: adaptive exploration overhead (MassiveCluster) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "elements", "join_cost_s", "overhead_s", "total_s", "overhead%"
    );
    for (i, base) in sizes.iter().enumerate() {
        let w = massive_pair(scaled(*base), 7000 + i as u64);
        let (m, _) = run_approach(&Approach::transformers(), &w.name, &w.a, &w.b, &cfg);
        let total = m.join_time().as_secs_f64();
        let overhead = m.overhead_wall.as_secs_f64();
        let join_cost = total - overhead;
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3} {:>9.1}%",
            m.workload,
            join_cost,
            overhead,
            total,
            100.0 * overhead / total
        );
        rows.push(m);
    }
    write_csv("results/fig14_overhead.csv", &rows).expect("write CSV");
}
