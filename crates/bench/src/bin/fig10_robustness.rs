//! Fig. 1 / Fig. 10 reproduction: join time across the density-ratio
//! spectrum for PBSM, R-TREE, GIPSY and TRANSFORMERS.
//!
//! Nine pairs of uniform datasets: |A| rises while |B| falls, sweeping the
//! density ratio over three orders of magnitude (the paper uses 200 K →
//! 200 M elements; we default to 200 → 200 K and scale with `TFM_SCALE`).

use tfm_bench::workloads::robustness_pairs;
use tfm_bench::{print_table, run_approach, scaled, write_csv, Approach, RunConfig};

fn main() {
    let cfg = RunConfig::default();
    // Paper: 200 K -> 200 M (ratio 10^3). At laptop scale the dense
    // endpoint must stay large enough that selective retrieval skips
    // *whole disk tracks* (where crawling beats scanning on a rotational
    // device), so the sweep covers 1 K -> 4 M.
    let lo = scaled(1_000);
    let hi = scaled(4_000_000);
    let pairs = robustness_pairs(lo, hi);

    let approaches = [
        Approach::Pbsm,
        Approach::Rtree,
        Approach::Gipsy,
        Approach::transformers(),
    ];

    let mut rows = Vec::new();
    for w in &pairs {
        for ap in &approaches {
            let (m, _) = run_approach(ap, &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }

    print_table("Fig. 10: join time across density ratios", &rows);
    write_csv("results/fig10_robustness.csv", &rows).expect("write CSV");

    // Robustness summary: max/min join time per approach across the sweep.
    println!("\nrobustness (max/min join time across the ratio sweep; lower = more robust):");
    for ap in &approaches {
        let times: Vec<f64> = rows
            .iter()
            .filter(|m| m.approach == ap.label())
            .map(|m| m.join_time().as_secs_f64())
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("  {:<14} {:>8.1}x", ap.label(), max / min);
    }
}
