//! Runs every experiment of the paper's evaluation (E1–E10 in DESIGN.md)
//! and writes all CSVs into `results/`. Summary tables print to stdout.
//!
//! This is the one-shot driver used to fill `EXPERIMENTS.md`; the
//! individual `figNN_*` binaries run single experiments with more detail.

use tfm_bench::workloads::*;
use tfm_bench::{
    print_serve_table, print_table, run_approach, run_serve_sweep, scaled, write_csv,
    write_serve_csv, Approach, RunConfig, ServeEngineKind, ServeJob,
};
use transformers::ThresholdPolicy;

fn main() {
    let cfg = RunConfig::default();
    let t0 = std::time::Instant::now();

    // E1: robustness sweep (Fig. 1 / Fig. 10).
    let mut rows = Vec::new();
    for w in robustness_pairs(scaled(1_000), scaled(4_000_000)) {
        for ap in [
            Approach::Pbsm,
            Approach::Rtree,
            Approach::Gipsy,
            Approach::transformers(),
        ] {
            let (m, _) = run_approach(&ap, &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }
    print_table("E1 Fig. 10: robustness", &rows);
    write_csv("results/fig10_robustness.csv", &rows).expect("csv");

    // E2-E4: non-uniform distributions (Fig. 11).
    let mut rows = Vec::new();
    for (i, base) in [350_000usize, 450_000, 550_000, 650_000].iter().enumerate() {
        let w = nonuniform_pair(scaled(*base), 3000 + i as u64);
        for ap in [Approach::transformers(), Approach::Pbsm, Approach::Rtree] {
            let (m, _) = run_approach(&ap, &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }
    print_table("E2-E4 Fig. 11: non-uniform distributions", &rows);
    write_csv("results/fig11_nonuniform.csv", &rows).expect("csv");

    // E5: uniform distributions (Table I).
    let mut rows = Vec::new();
    for (i, base) in [150_000usize, 250_000, 350_000].iter().enumerate() {
        let w = uniform_pair(scaled(*base), 4000 + i as u64);
        for ap in [Approach::transformers(), Approach::Pbsm, Approach::Rtree] {
            let (m, _) = run_approach(&ap, &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }
    print_table("E5 Table I: uniform distribution", &rows);
    write_csv("results/table1_uniform.csv", &rows).expect("csv");

    // E6: neuroscience surrogate (Fig. 12), PBSM at 20 partitions/dim.
    let neuro_cfg = RunConfig {
        pbsm_partitions: 20,
        ..cfg.clone()
    };
    let mut rows = Vec::new();
    for (i, base) in [100_000usize, 250_000, 350_000].iter().enumerate() {
        let w = neuro_pair(scaled(*base), 5000 + i as u64);
        for ap in [Approach::transformers(), Approach::Pbsm, Approach::Rtree] {
            let (m, _) = run_approach(&ap, &w.name, &w.a, &w.b, &neuro_cfg);
            rows.push(m);
        }
    }
    print_table("E6 Fig. 12: neuroscience", &rows);
    write_csv("results/fig12_neuro.csv", &rows).expect("csv");

    // E7: transformation impact (Fig. 13 left).
    let mut rows = Vec::new();
    for (i, base) in [50_000usize, 150_000, 250_000, 350_000].iter().enumerate() {
        let w = massive_pair(scaled(*base), 6000 + i as u64);
        for ap in [Approach::no_tr(), Approach::transformers()] {
            let (m, _) = run_approach(&ap, &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }
    print_table("E7 Fig. 13 left: transformation impact", &rows);
    write_csv("results/fig13_transformations.csv", &rows).expect("csv");

    // E8: threshold sensitivity (Fig. 13 right).
    let mut rows = Vec::new();
    for w in threshold_workloads(scaled(350_000), 6100) {
        for policy in [
            ThresholdPolicy::over_fit(),
            ThresholdPolicy::CostModel,
            ThresholdPolicy::under_fit(),
        ] {
            let (m, _) = run_approach(&Approach::with_policy(policy), &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }
    print_table("E8 Fig. 13 right: threshold sensitivity", &rows);
    write_csv("results/fig13_thresholds.csv", &rows).expect("csv");

    // E9: exploration overhead (Fig. 14).
    let mut rows = Vec::new();
    for (i, base) in [50_000usize, 150_000, 250_000, 350_000].iter().enumerate() {
        let w = massive_pair(scaled(*base), 7000 + i as u64);
        let (m, _) = run_approach(&Approach::transformers(), &w.name, &w.a, &w.b, &cfg);
        println!(
            "E9 overhead {}: {:.1}% of join time",
            m.workload,
            100.0 * m.overhead_wall.as_secs_f64() / m.join_time().as_secs_f64()
        );
        rows.push(m);
    }
    write_csv("results/fig14_overhead.csv", &rows).expect("csv");

    // E10: data filtered by TRANSFORMERS (pages not read vs total pages).
    // Local density contrast is what makes filtering possible; measure it
    // on a strongly contrasting pair (cf. §VII-C2: 20 % filtered on
    // DenseCluster, 47 % on MassiveCluster at paper scale — at laptop scale
    // the effect concentrates in the contrasting-density regime).
    let sparse = tfm_datagen::generate(&tfm_datagen::DatasetSpec {
        max_side: BOX_SIDE,
        ..tfm_datagen::DatasetSpec::uniform(scaled(1_000), 8000)
    });
    let dense = tfm_datagen::generate(&tfm_datagen::DatasetSpec {
        max_side: BOX_SIDE,
        ..tfm_datagen::DatasetSpec::uniform(scaled(2_000_000), 8001)
    });
    let (m, _) = run_approach(&Approach::transformers(), "1Kx2M", &sparse, &dense, &cfg);
    let total_pages =
        ((sparse.len() + dense.len()) as f64 / ((cfg.page_size - 2) / 56) as f64).ceil();
    println!(
        "\nE10 filtering: TRANSFORMERS read {} of ~{:.0} element pages ({:.0}% filtered out)",
        m.pages_read,
        total_pages,
        100.0 * (1.0 - m.pages_read as f64 / total_pages)
    );

    // E11: query serving (tfm-serve) — all three engines over a uniform
    // dataset, Hilbert-batched vs arrival-order, 1 and 4 workers.
    use tfm_datagen::{generate_trace, ProbeMix, QueryTraceSpec};
    use tfm_serve::ServeConfig;
    let dataset = tfm_datagen::generate(&tfm_datagen::DatasetSpec {
        max_side: BOX_SIDE,
        ..tfm_datagen::DatasetSpec::uniform(scaled(350_000), 9000)
    });
    let traces: Vec<(&str, Vec<tfm_geom::SpatialQuery>)> = [
        (ProbeMix::Uniform, "serve-uniform"),
        (ProbeMix::Clustered { clusters: 8 }, "serve-clustered"),
    ]
    .into_iter()
    .map(|(mix, name)| {
        (
            name,
            generate_trace(&QueryTraceSpec {
                max_window_side: 20.0,
                ..QueryTraceSpec::with_mix(scaled(20_000).min(50_000), mix, 9001)
            }),
        )
    })
    .collect();
    // One index build per engine; every (trace, threads, batching)
    // combination replays against it.
    let jobs: Vec<ServeJob> = traces
        .iter()
        .flat_map(|(name, trace)| {
            [(1, false), (1, true), (4, true)].map(|(threads, hilbert)| ServeJob {
                workload: name,
                trace,
                config: ServeConfig {
                    threads,
                    batch: 128,
                    hilbert_batching: hilbert,
                    ..ServeConfig::default()
                },
            })
        })
        .collect();
    let mut rows = Vec::new();
    for kind in ServeEngineKind::all() {
        rows.extend(run_serve_sweep(kind, &dataset, &cfg, &jobs));
    }
    print_serve_table("E11: query serving (throughput, latency, I/O split)", &rows);
    write_serve_csv("results/serve.csv", &rows).expect("csv");

    println!(
        "\nall experiments finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
