//! Fig. 11 reproduction: non-uniform distributions (DenseCluster ×
//! UniformCluster) — indexing time (left), join-time breakdown into I/O and
//! join work (middle), and intersection tests (right), for TRANSFORMERS,
//! PBSM and R-TREE.
//!
//! The paper sweeps 350 M → 650 M elements; we default to 350 K → 650 K
//! (paper ÷ 1000) and scale with `TFM_SCALE`. GIPSY is excluded exactly as
//! in the paper ("due to the long execution time when joining densely
//! populated datasets").

use tfm_bench::workloads::nonuniform_pair;
use tfm_bench::{print_table, run_approach, scaled, write_csv, Approach, RunConfig};

fn main() {
    let cfg = RunConfig::default();
    let sizes = [350_000, 450_000, 550_000, 650_000];
    let approaches = [Approach::transformers(), Approach::Pbsm, Approach::Rtree];

    let mut rows = Vec::new();
    for (i, base) in sizes.iter().enumerate() {
        let w = nonuniform_pair(scaled(*base), 3000 + i as u64);
        for ap in &approaches {
            let (m, _) = run_approach(ap, &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }

    print_table("Fig. 11: non-uniform distributions", &rows);
    write_csv("results/fig11_nonuniform.csv", &rows).expect("write CSV");

    println!("\nFig. 11 middle (join breakdown, seconds: io + cpu):");
    for m in &rows {
        println!(
            "  {:<10} {:<14} io={:>8.3} cpu={:>8.3} total={:>8.3}",
            m.workload,
            m.approach,
            m.join_sim_io.as_secs_f64(),
            m.join_wall.as_secs_f64(),
            m.join_time().as_secs_f64()
        );
    }
    println!("\nFig. 11 right (#intersection tests, TRANSFORMERS includes metadata):");
    for m in &rows {
        println!("  {:<10} {:<14} {:>14}", m.workload, m.approach, m.tests);
    }
}
