//! Extended comparison including the related-work baselines the paper
//! discusses but does not measure (§VIII-B): SSSJ (sweeping strips) and
//! S3 (size separation). Run on the Table-I uniform workload and one
//! contrasting-density pair.

use tfm_bench::workloads::{uniform_pair, BOX_SIDE};
use tfm_bench::{print_table, run_approach, scaled, write_csv, Approach, RunConfig};
use tfm_datagen::{generate, DatasetSpec};

fn main() {
    let cfg = RunConfig::default();
    let approaches = [
        Approach::transformers(),
        Approach::Pbsm,
        Approach::Rtree,
        Approach::Sssj,
        Approach::S3,
    ];

    let mut rows = Vec::new();

    // Uniform, similar densities (Table-I regime).
    let w = uniform_pair(scaled(250_000), 9000);
    for ap in &approaches {
        let (m, _) = run_approach(ap, "uniform 250K", &w.a, &w.b, &cfg);
        rows.push(m);
    }

    // Contrasting densities (Fig. 10 regime).
    let a = generate(&DatasetSpec {
        max_side: BOX_SIDE,
        ..DatasetSpec::uniform(scaled(2_000), 9100)
    });
    let b = generate(&DatasetSpec {
        max_side: BOX_SIDE,
        ..DatasetSpec::uniform(scaled(1_000_000), 9101)
    });
    for ap in &approaches {
        let (m, _) = run_approach(ap, "2K x 1M", &a, &b, &cfg);
        rows.push(m);
    }

    print_table(
        "Extra baselines: SSSJ and S3 vs the measured competitors",
        &rows,
    );
    write_csv("results/extra_baselines.csv", &rows).expect("write CSV");
}
