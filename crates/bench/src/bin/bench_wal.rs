//! WAL gate — group commit vs per-commit fsync, plus recovery checks.
//!
//! Two identical multi-threaded commit workloads against the segmented
//! WAL, differing only in [`SyncMode`]:
//!
//! 1. **each-commit** — one fsync per commit, unconditionally: the
//!    ablation baseline. With injected fsync latency every commit pays a
//!    full device flush on its own critical path.
//! 2. **group-commit** — a commit whose LSN another thread's fsync
//!    already covered returns without flushing; otherwise one fsync makes
//!    every record appended so far durable. Concurrent committers
//!    amortize the flush, so throughput must beat the baseline by
//!    ≥ 1.3× and total fsyncs must undercut it.
//!
//! fsync latency is injected ([`WalOptions::fsync_latency`]) so the
//! batching win is measurable on tmpfs CI runners whose real fsync is
//! nearly free — the same regime a commodity SSD's ~1 ms flush creates.
//!
//! The group run's log then feeds the recovery gates: a full replay onto
//! a fresh disk must land every committed page image, skip nothing, and
//! be idempotent (a second replay changes no page). Results go to
//! `BENCH_wal.json`; the process exits non-zero when a gate fails.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tfm_storage::{Disk, PageId, RedoLog};
use tfm_wal::{recover, SyncMode, Wal, WalOptions, WalStats};

/// Committer threads — enough concurrent committers that fsyncs overlap
/// commit arrivals and batches form.
const THREADS: usize = 8;
/// Transactions per thread.
const TXNS: usize = 40;
/// Page images per transaction.
const PAGES_PER_TXN: usize = 3;
/// Logged page size in bytes.
const PAGE_SIZE: usize = 512;
/// Injected fsync latency — the device-flush stand-in.
const FSYNC_LATENCY: Duration = Duration::from_millis(2);

fn arg(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

struct RunOut {
    wall: Duration,
    stats: WalStats,
    commits_per_s: f64,
    mean_batch: f64,
}

/// Runs the commit workload in a fresh log directory and returns its
/// counters; the directory is left in place for the recovery phase.
fn run(dir: &std::path::Path, mode: SyncMode) -> RunOut {
    std::fs::remove_dir_all(dir).ok();
    let wal = Wal::open(
        dir,
        WalOptions {
            fsync_latency: FSYNC_LATENCY,
            sync_mode: mode,
            ..WalOptions::default()
        },
    )
    .expect("open wal");
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..THREADS {
            let wal = &wal;
            s.spawn(move || {
                let mut image = vec![0u8; PAGE_SIZE];
                for txn_i in 0..TXNS {
                    let txn = wal.begin();
                    for p in 0..PAGES_PER_TXN {
                        // Distinct page per (worker, txn, slot) with
                        // recognizable content, so replay counts are exact
                        // and after-images are distinguishable.
                        let id = (w * TXNS * PAGES_PER_TXN + txn_i * PAGES_PER_TXN + p) as u64;
                        image.fill((id % 251) as u8);
                        wal.log_page(txn, PageId(id), &image);
                    }
                    wal.commit(txn);
                }
            });
        }
    });
    let wall = t.elapsed();
    let stats = wal.stats();
    let batches = wal.batch_sizes();
    let mean_batch = if batches.is_empty() {
        0.0
    } else {
        batches.iter().sum::<u64>() as f64 / batches.len() as f64
    };
    RunOut {
        wall,
        stats,
        commits_per_s: stats.commits as f64 / wall.as_secs_f64().max(1e-9),
        mean_batch,
    }
}

fn json_row(out: &mut String, label: &str, r: &RunOut) {
    let _ = write!(
        out,
        "    {{\"run\": \"{}\", \"wall_s\": {:.6}, \"commits\": {}, \"commits_per_s\": {:.1}, \
         \"fsyncs\": {}, \"records\": {}, \"bytes\": {}, \"segments\": {}, \
         \"mean_batch\": {:.2}}}",
        label,
        r.wall.as_secs_f64(),
        r.stats.commits,
        r.commits_per_s,
        r.stats.fsyncs,
        r.stats.records,
        r.stats.bytes,
        r.stats.segments,
        r.mean_batch,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg(&args, "--out", "BENCH_wal.json");
    let default_dir = std::env::temp_dir()
        .join(format!("tfm_bench_wal_{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let base = std::path::PathBuf::from(arg(&args, "--dir", &default_dir));

    let each = run(&base.join("each"), SyncMode::EachCommit);
    let group = run(&base.join("group"), SyncMode::GroupCommit);
    let speedup = group.commits_per_s / each.commits_per_s.max(1e-9);

    // Recovery over the group run's log: every committed image lands,
    // nothing is skipped, and a second replay is a no-op image-wise.
    let committed_pages = (THREADS * TXNS * PAGES_PER_TXN) as u64;
    let disk = Disk::in_memory(PAGE_SIZE);
    let t = Instant::now();
    let report = recover(&base.join("group"), &disk).expect("recovery");
    let recovery_wall = t.elapsed();
    let image_of = |d: &Disk| -> Vec<u8> {
        let mut all = Vec::new();
        for p in 0..d.allocated_pages() {
            all.extend_from_slice(&d.read_page_vec(PageId(p)));
        }
        all
    };
    let first_image = image_of(&disk);
    let report2 = recover(&base.join("group"), &disk).expect("second recovery");
    let idempotent = image_of(&disk) == first_image && report2.pages_replayed == committed_pages;

    let gates = [
        ("group_commit_speedup_1_3x", speedup >= 1.3),
        ("group_fewer_fsyncs", group.stats.fsyncs < each.stats.fsyncs),
        ("group_batches_multiple_commits", group.mean_batch > 1.0),
        (
            "recovery_replays_all_committed",
            report.pages_replayed == committed_pages && report.commits == group.stats.commits,
        ),
        (
            "recovery_skips_nothing_clean",
            report.skipped_uncommitted == 0 && !report.torn_tail,
        ),
        ("recovery_idempotent", idempotent),
    ];

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu_model = tfm_bench::host_cpu_model();
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"host\": {{\"threads\": {host_threads}, \"cpu_model\": \"{cpu_model}\"}},"
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"threads\": {THREADS}, \"txns_per_thread\": {TXNS}, \
         \"pages_per_txn\": {PAGES_PER_TXN}, \"page_size\": {PAGE_SIZE}, \
         \"fsync_latency_ms\": {}}},",
        FSYNC_LATENCY.as_millis()
    );
    let _ = writeln!(json, "  \"group_commit_speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"wall_s\": {:.6}, \"pages_replayed\": {}, \"commits\": {}, \
         \"skipped_uncommitted\": {}, \"max_lsn\": {}}},",
        recovery_wall.as_secs_f64(),
        report.pages_replayed,
        report.commits,
        report.skipped_uncommitted,
        report.max_lsn
    );
    json.push_str("  \"rows\": [\n");
    let rows = [("each-commit", &each), ("group-commit", &group)];
    for (i, (label, r)) in rows.iter().enumerate() {
        json_row(&mut json, label, r);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"gates\": {\n");
    for (i, (name, ok)) in gates.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {ok}");
        json.push_str(if i + 1 < gates.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_wal.json");

    println!("== WAL: group commit vs per-commit fsync ==");
    println!(
        "each-commit {:.3}s ({:.0} commits/s, {} fsyncs) | group-commit {:.3}s \
         ({:.0} commits/s, {} fsyncs, mean batch {:.1})",
        each.wall.as_secs_f64(),
        each.commits_per_s,
        each.stats.fsyncs,
        group.wall.as_secs_f64(),
        group.commits_per_s,
        group.stats.fsyncs,
        group.mean_batch,
    );
    println!(
        "group-commit speedup {speedup:.2}x (gate >= 1.3x); recovery {:.3}s, {} pages",
        recovery_wall.as_secs_f64(),
        report.pages_replayed
    );
    let mut failed = false;
    for (name, ok) in gates {
        println!("gate {name}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    }
    println!("wrote {out_path}");
    if base.to_string_lossy() == default_dir {
        std::fs::remove_dir_all(&base).ok();
    }
    if failed {
        std::process::exit(1);
    }
}
