//! Table I reproduction: execution time for datasets with uniform
//! distribution — TRANSFORMERS vs PBSM vs R-TREE at three sizes.
//!
//! Paper sizes 150 M / 250 M / 350 M elements; defaults here are
//! 150 K / 250 K / 350 K (paper ÷ 1000), scaled by `TFM_SCALE`.

use tfm_bench::workloads::uniform_pair;
use tfm_bench::{print_table, run_approach, scaled, write_csv, Approach, RunConfig};

fn main() {
    let cfg = RunConfig::default();
    let sizes = [150_000, 250_000, 350_000];
    let approaches = [Approach::transformers(), Approach::Pbsm, Approach::Rtree];

    let mut rows = Vec::new();
    for (i, base) in sizes.iter().enumerate() {
        let w = uniform_pair(scaled(*base), 4000 + i as u64);
        for ap in &approaches {
            let (m, _) = run_approach(ap, &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }

    print_table("Table I: uniform distribution", &rows);
    write_csv("results/table1_uniform.csv", &rows).expect("write CSV");

    println!("\nTable I (join time, seconds):");
    println!(
        "{:<12} {:>14} {:>10} {:>10}",
        "elements", "TRANSFORMERS", "PBSM", "RTREE"
    );
    for chunk in rows.chunks(3) {
        println!(
            "{:<12} {:>14.3} {:>10.3} {:>10.3}",
            chunk[0].workload,
            chunk[0].join_time().as_secs_f64(),
            chunk[1].join_time().as_secs_f64(),
            chunk[2].join_time().as_secs_f64()
        );
    }
}
