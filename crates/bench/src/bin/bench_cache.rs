//! Shared page cache vs private-pool ablation — the acceptance bench of
//! the cache subsystem.
//!
//! Two comparisons, both with byte-identical outputs required:
//!
//! * **E11 serve sweep** — the TRANSFORMERS engine replays one uniform
//!   probe trace at 1/2/4/8 workers, once through the process-wide
//!   [`tfm_serve` shared cache] and once through per-worker private
//!   pools. The shared cache must read **strictly fewer pages in total**
//!   over the sweep and post a **higher pool-hit fraction**.
//! * **4-worker parallel join** — the parallel join vs the
//!   `--private-pool` ablation on a clustered-vs-uniform workload at a
//!   scarce page budget; same gates. The *gate* rows run the
//!   independent-worker scheduler mode (`--no-transform --no-prune`),
//!   whose page workload is fixed — the fully adaptive join's *work* is
//!   interleaving-dependent (role switches and cross-worker pruning make
//!   the set of pages visited vary by ±10% between runs), which would
//!   turn a strict read-count comparison into a coin flip. Fully
//!   adaptive 1/2/4/8-worker rows are recorded alongside for the
//!   trajectory (outputs must match in every configuration; their I/O is
//!   informational).
//!
//! Results are written to `BENCH_cache.json` (flat, hand-rolled JSON like
//! the skew sidecar — no serde_json in the offline tree). The process
//! exits non-zero if any gate fails, so CI can use it as a perf gate.
//!
//! Scale with `TFM_SCALE` like the figure binaries; override the output
//! path with `--out PATH`.

use std::fmt::Write as _;
use tfm_bench::{run_serve, scaled, Approach, RunConfig, ServeEngineKind, ServeMetrics};
use tfm_datagen::{generate, generate_trace, DatasetSpec, Distribution, QueryTraceSpec};
use tfm_memjoin::canonicalize;
use tfm_serve::ServeConfig;

struct JoinRow {
    threads: usize,
    shared: bool,
    pages_read: u64,
    pool_hits: u64,
    join_time_s: f64,
}

impl JoinRow {
    fn hit_fraction(&self) -> f64 {
        let total = self.pool_hits + self.pages_read;
        if total == 0 {
            return 0.0;
        }
        self.pool_hits as f64 / total as f64
    }
}

fn json_serve_row(out: &mut String, m: &ServeMetrics) {
    let _ = write!(
        out,
        "    {{\"engine\": \"{}\", \"threads\": {}, \"shared_cache\": {}, \
         \"pages_read\": {}, \"pool_hits\": {}, \"pool_misses\": {}, \
         \"hit_fraction\": {:.4}, \"decoded_hits\": {}, \"decoded_misses\": {}, \
         \"lock_acquisitions\": {}, \"lock_contended\": {}, \"qps\": {:.1}, \
         \"sim_io_s\": {:.6}}}",
        m.engine,
        m.threads,
        m.shared_cache,
        m.pages_read,
        m.pool_hits,
        m.pool_misses,
        m.pool_hit_fraction(),
        m.decoded_hits,
        m.decoded_misses,
        m.lock_acquisitions,
        m.lock_contended,
        m.qps,
        m.sim_io.as_secs_f64(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_cache.json".to_string());

    let threads_sweep = [1usize, 2, 4, 8];
    let run_cfg = RunConfig::default();

    // ---- Serve: E11-style sweep, shared vs private -------------------
    let dataset = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(scaled(15_000), 71)
    });
    let trace = generate_trace(&QueryTraceSpec::uniform(scaled(1_200), 72));

    let mut serve_rows: Vec<ServeMetrics> = Vec::new();
    let mut reference: Option<Vec<Vec<u64>>> = None;
    let mut outputs_identical = true;
    for &threads in &threads_sweep {
        for shared in [true, false] {
            let serve_cfg = ServeConfig {
                threads,
                batch: 64,
                shared_cache: shared,
                ..ServeConfig::default()
            };
            let (m, results) = run_serve(
                ServeEngineKind::Transformers,
                "cache-sweep",
                &dataset,
                &trace,
                &run_cfg,
                &serve_cfg,
            );
            match &reference {
                None => reference = Some(results),
                Some(r) => outputs_identical &= &results == r,
            }
            serve_rows.push(m);
        }
    }
    let serve_shared_reads: u64 = serve_rows
        .iter()
        .filter(|m| m.shared_cache)
        .map(|m| m.pages_read)
        .sum();
    let serve_private_reads: u64 = serve_rows
        .iter()
        .filter(|m| !m.shared_cache)
        .map(|m| m.pages_read)
        .sum();
    let hit_frac = |shared: bool| {
        let (hits, misses) = serve_rows
            .iter()
            .filter(|m| m.shared_cache == shared)
            .fold((0u64, 0u64), |(h, mi), m| {
                (h + m.pool_hits, mi + m.pool_misses)
            });
        hits as f64 / (hits + misses).max(1) as f64
    };
    let serve_shared_hit = hit_frac(true);
    let serve_private_hit = hit_frac(false);

    // ---- Join: 4-worker gate plus the 1/2/8 trajectory ---------------
    let a = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::with_distribution(
            scaled(10_000),
            Distribution::MassiveCluster {
                clusters: 4,
                elements_per_cluster: scaled(10_000) / 4,
            },
            73,
        )
    });
    let b = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(scaled(10_000), 74)
    });

    let mut join_rows: Vec<JoinRow> = Vec::new();
    let mut join_reference: Option<Vec<(u64, u64)>> = None;
    // Equal *total* page budget, sized below the working set: the private
    // ablation splits it into per-worker pools (which duplicate hot pages
    // and thrash), the shared cache keeps one copy of every hot page for
    // all workers.
    let join_pool_pages = 32;
    let run_join = |threads: usize,
                    shared: bool,
                    adaptive: bool,
                    join_reference: &mut Option<Vec<(u64, u64)>>,
                    outputs_identical: &mut bool| {
        let mut join_cfg = transformers::JoinConfig::default();
        if !shared {
            join_cfg = join_cfg.with_private_pools();
        }
        if !adaptive {
            join_cfg = join_cfg
                .without_worker_transforms()
                .without_cross_worker_pruning();
        }
        let approach = Approach::TransformersParallel(join_cfg, threads);
        let cfg = RunConfig {
            shared_cache: shared,
            pool_pages: join_pool_pages,
            ..run_cfg.clone()
        };
        let (m, pairs) = tfm_bench::run_approach(&approach, "cache-join", &a, &b, &cfg);
        let pairs = canonicalize(pairs);
        match &join_reference {
            None => *join_reference = Some(pairs),
            Some(r) => *outputs_identical &= &pairs == r,
        }
        JoinRow {
            threads,
            shared,
            pages_read: m.pages_read,
            pool_hits: m.pool_hits,
            join_time_s: m.join_time().as_secs_f64(),
        }
    };
    // Gate rows: fixed-work scheduler mode at 4 workers.
    let join_shared_4 = run_join(4, true, false, &mut join_reference, &mut outputs_identical);
    let join_private_4 = run_join(4, false, false, &mut join_reference, &mut outputs_identical);
    // Trajectory rows: the fully adaptive join at 1/2/4/8 workers.
    for &threads in &threads_sweep {
        for shared in [true, false] {
            let row = run_join(
                threads,
                shared,
                true,
                &mut join_reference,
                &mut outputs_identical,
            );
            join_rows.push(row);
        }
    }

    // ---- Gates --------------------------------------------------------
    let gates = [
        ("outputs_identical", outputs_identical),
        (
            "serve_fewer_page_reads",
            serve_shared_reads < serve_private_reads,
        ),
        (
            "serve_higher_hit_fraction",
            serve_shared_hit > serve_private_hit,
        ),
        (
            "join4_fewer_page_reads",
            join_shared_4.pages_read < join_private_4.pages_read,
        ),
        (
            "join4_higher_hit_fraction",
            join_shared_4.hit_fraction() > join_private_4.hit_fraction(),
        ),
    ];

    // ---- Report -------------------------------------------------------
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu_model = tfm_bench::host_cpu_model();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {},", tfm_bench::scale());
    let _ = writeln!(
        json,
        "  \"host\": {{\"threads\": {host_threads}, \"cpu_model\": \"{cpu_model}\"}},"
    );
    let _ = writeln!(
        json,
        "  \"serve\": {{\n    \"dataset_elements\": {}, \"queries\": {},",
        dataset.len(),
        trace.len()
    );
    let _ = writeln!(
        json,
        "    \"shared_total_pages_read\": {serve_shared_reads}, \
         \"private_total_pages_read\": {serve_private_reads},"
    );
    let _ = writeln!(
        json,
        "    \"shared_hit_fraction\": {serve_shared_hit:.4}, \
         \"private_hit_fraction\": {serve_private_hit:.4},"
    );
    json.push_str("    \"rows\": [\n");
    for (i, m) in serve_rows.iter().enumerate() {
        json.push_str("    ");
        json_serve_row(&mut json, m);
        json.push_str(if i + 1 < serve_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(
        json,
        "  \"join\": {{\n    \"a_elements\": {}, \"b_elements\": {}, \"pool_pages\": {join_pool_pages},",
        a.len(),
        b.len()
    );
    let _ = writeln!(
        json,
        "    \"gate_x4\": {{\"shared_pages_read\": {}, \"shared_hit_fraction\": {:.4}, \
         \"private_pages_read\": {}, \"private_hit_fraction\": {:.4}}},",
        join_shared_4.pages_read,
        join_shared_4.hit_fraction(),
        join_private_4.pages_read,
        join_private_4.hit_fraction()
    );
    json.push_str("    \"adaptive_rows\": [\n");
    for (i, r) in join_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"threads\": {}, \"shared_cache\": {}, \"pages_read\": {}, \
             \"pool_hits\": {}, \"hit_fraction\": {:.4}, \"join_time_s\": {:.6}}}",
            r.threads,
            r.shared,
            r.pages_read,
            r.pool_hits,
            r.hit_fraction(),
            r.join_time_s
        );
        json.push_str(if i + 1 < join_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"gates\": {\n");
    for (i, (name, ok)) in gates.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {ok}");
        json.push_str(if i + 1 < gates.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_cache.json");

    println!("== shared page cache vs private pools ==");
    println!(
        "serve sweep (1/2/4/8 workers): shared {} pages @ {:.1}% hits vs private {} pages @ {:.1}% hits",
        serve_shared_reads,
        serve_shared_hit * 100.0,
        serve_private_reads,
        serve_private_hit * 100.0
    );
    println!(
        "join x4: shared {} pages @ {:.1}% hits vs private {} pages @ {:.1}% hits",
        join_shared_4.pages_read,
        join_shared_4.hit_fraction() * 100.0,
        join_private_4.pages_read,
        join_private_4.hit_fraction() * 100.0
    );
    let mut failed = false;
    for (name, ok) in gates {
        println!("gate {name}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    }
    println!("wrote {out_path}");
    if failed {
        std::process::exit(1);
    }
}
