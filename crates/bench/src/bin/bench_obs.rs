//! Observability overhead ablation and multi-core scaling curves — the
//! acceptance bench of the `tfm-obs` subsystem.
//!
//! Two artifacts:
//!
//! * **`BENCH_obs.json`** — serve throughput with the global metrics
//!   registry (and per-query tracing) ON vs OFF, best-of-3 each,
//!   interleaved to share thermal/cache conditions. Gates: results must
//!   be byte-identical between the two modes, and metrics-on throughput
//!   must stay within 5% of metrics-off. A metrics-on vs -off parallel
//!   join row rides along as an informational trajectory (join wall time
//!   at this scale is too noisy for a strict gate).
//! * **`BENCH_serve.json`** — multi-core scaling curves: serve qps /
//!   latency / queue-wait for all three engines at 1/2/4/8 workers, and
//!   parallel-join wall time at 1/2/4/8 workers, recorded from this
//!   host (the `host` object documents the CPU model and the
//!   parallelism actually available, so a checked-in artifact carries
//!   its own provenance).
//!
//! Both files are flat hand-rolled JSON (no serde_json in the offline
//! tree). The process exits non-zero if an `BENCH_obs.json` gate fails,
//! so CI can use it as the observability overhead gate. Scale with
//! `TFM_SCALE`; override the output paths with `--obs-out` / `--serve-out`.

use std::fmt::Write as _;
use tfm_bench::{
    run_approach, run_serve, run_serve_traced, scaled, Approach, RunConfig, ServeEngineKind,
    ServeMetrics,
};
use tfm_datagen::{generate, generate_trace, DatasetSpec, Distribution, QueryTraceSpec};
use tfm_memjoin::canonicalize;
use tfm_serve::ServeConfig;

fn arg(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

/// One serve measurement with the registry in the requested state.
/// Metrics-on also collects per-query traces — the full-fat
/// observability cost, not just the counter increments.
fn serve_once(
    on: bool,
    elements: &[tfm_geom::SpatialElement],
    trace: &[tfm_geom::SpatialQuery],
    run_cfg: &RunConfig,
    serve_cfg: &ServeConfig,
) -> (ServeMetrics, Vec<Vec<u64>>) {
    tfm_obs::set_enabled(on);
    if on {
        tfm_obs::global().reset();
        let (m, results, traces) = run_serve_traced(
            ServeEngineKind::Transformers,
            "obs-ablation",
            elements,
            trace,
            run_cfg,
            serve_cfg,
        );
        assert_eq!(traces.len(), trace.len(), "one trace per query");
        (m, results)
    } else {
        let (m, results) = run_serve(
            ServeEngineKind::Transformers,
            "obs-ablation",
            elements,
            trace,
            run_cfg,
            serve_cfg,
        );
        (m, results)
    }
}

fn join_once(
    on: bool,
    a: &[tfm_geom::SpatialElement],
    b: &[tfm_geom::SpatialElement],
) -> (f64, Vec<(u64, u64)>) {
    tfm_obs::set_enabled(on);
    if on {
        tfm_obs::global().reset();
    }
    let approach = Approach::TransformersParallel(transformers::JoinConfig::default(), 4);
    let (m, pairs) = run_approach(&approach, "obs-join", a, b, &RunConfig::default());
    (m.join_time().as_secs_f64(), canonicalize(pairs))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let obs_out = arg(&args, "--obs-out", "BENCH_obs.json");
    let serve_out = arg(&args, "--serve-out", "BENCH_serve.json");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu_model = tfm_bench::host_cpu_model();

    // ---- Ablation workload -------------------------------------------
    let dataset = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(scaled(15_000), 81)
    });
    let trace = generate_trace(&QueryTraceSpec::uniform(scaled(2_000), 82));
    let run_cfg = RunConfig::default();
    let serve_cfg = ServeConfig {
        threads: 4.min(host_threads),
        batch: 64,
        ..ServeConfig::default()
    };

    // Interleave off/on rounds so both modes see the same warm-up and
    // thermal conditions; keep the best of each (throughput benches
    // compare best-case, not noise).
    let mut off_qps: Vec<f64> = Vec::new();
    let mut on_qps: Vec<f64> = Vec::new();
    let mut reference: Option<Vec<Vec<u64>>> = None;
    let mut results_identical = true;
    for _round in 0..3 {
        for on in [false, true] {
            let (m, results) = serve_once(on, &dataset, &trace, &run_cfg, &serve_cfg);
            match &reference {
                None => reference = Some(results),
                Some(r) => results_identical &= &results == r,
            }
            if on {
                on_qps.push(m.qps);
            } else {
                off_qps.push(m.qps);
            }
        }
    }
    let best = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    let best_off = best(&off_qps);
    let best_on = best(&on_qps);
    let overhead = 1.0 - best_on / best_off.max(1e-9);
    let metric_series = tfm_obs::global().snapshot().entries.len();

    // Join ablation (informational): same interleaving, best-of-3 walls.
    let a = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::with_distribution(scaled(8_000), Distribution::dense_cluster_default(), 83)
    });
    let b = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(scaled(8_000), 84)
    });
    let mut join_off: Vec<f64> = Vec::new();
    let mut join_on: Vec<f64> = Vec::new();
    let mut join_reference: Option<Vec<(u64, u64)>> = None;
    let mut join_identical = true;
    for _round in 0..3 {
        for on in [false, true] {
            let (wall, pairs) = join_once(on, &a, &b);
            match &join_reference {
                None => join_reference = Some(pairs),
                Some(r) => join_identical &= &pairs == r,
            }
            if on {
                join_on.push(wall);
            } else {
                join_off.push(wall);
            }
        }
    }
    let best_wall = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    tfm_obs::set_enabled(false);

    let gates = [
        ("serve_results_identical", results_identical),
        ("join_results_identical", join_identical),
        ("serve_overhead_within_5pct", best_on >= 0.95 * best_off),
    ];

    let fmt_list = |v: &[f64]| {
        let body: Vec<String> = v.iter().map(|x| format!("{x:.1}")).collect();
        format!("[{}]", body.join(", "))
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {},", tfm_bench::scale());
    let _ = writeln!(
        json,
        "  \"host\": {{\"threads\": {host_threads}, \"cpu_model\": \"{cpu_model}\"}},"
    );
    let _ = writeln!(
        json,
        "  \"serve\": {{\n    \"dataset_elements\": {}, \"queries\": {}, \"threads\": {},",
        dataset.len(),
        trace.len(),
        serve_cfg.threads
    );
    let _ = writeln!(
        json,
        "    \"qps_off\": {}, \"qps_on\": {},",
        fmt_list(&off_qps),
        fmt_list(&on_qps)
    );
    let _ = writeln!(
        json,
        "    \"best_qps_off\": {best_off:.1}, \"best_qps_on\": {best_on:.1}, \
         \"overhead_fraction\": {overhead:.4},"
    );
    let _ = writeln!(json, "    \"metric_series_on\": {metric_series}");
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"join\": {{\n    \"a_elements\": {}, \"b_elements\": {}, \"threads\": 4,",
        a.len(),
        b.len()
    );
    let _ = writeln!(
        json,
        "    \"best_wall_s_off\": {:.6}, \"best_wall_s_on\": {:.6}",
        best_wall(&join_off),
        best_wall(&join_on)
    );
    json.push_str("  },\n  \"gates\": {\n");
    for (i, (name, ok)) in gates.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {ok}");
        json.push_str(if i + 1 < gates.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    std::fs::write(&obs_out, &json).expect("write BENCH_obs.json");

    // ---- Multi-core curves -> BENCH_serve.json ------------------------
    let threads_sweep = [1usize, 2, 4, 8];
    let mut curve_rows: Vec<ServeMetrics> = Vec::new();
    for kind in ServeEngineKind::all() {
        for &threads in &threads_sweep {
            let cfg = ServeConfig {
                threads,
                batch: 64,
                ..ServeConfig::default()
            };
            let (m, _) = run_serve(kind, "serve-curve", &dataset, &trace, &run_cfg, &cfg);
            curve_rows.push(m);
        }
    }
    let mut join_curve: Vec<(usize, f64, u64)> = Vec::new();
    for &threads in &threads_sweep {
        let approach = Approach::TransformersParallel(transformers::JoinConfig::default(), threads);
        let (m, _) = run_approach(&approach, "join-curve", &a, &b, &RunConfig::default());
        join_curve.push((threads, m.join_time().as_secs_f64(), m.pages_read));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {},", tfm_bench::scale());
    let _ = writeln!(
        json,
        "  \"host\": {{\"threads\": {host_threads}, \"cpu_model\": \"{cpu_model}\"}},"
    );
    let _ = writeln!(
        json,
        "  \"serve\": {{\n    \"dataset_elements\": {}, \"queries\": {}, \"rows\": [",
        dataset.len(),
        trace.len()
    );
    for (i, m) in curve_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"engine\": \"{}\", \"threads\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"queue_wait_p50_us\": {:.2}, \
             \"queue_wait_p99_us\": {:.2}, \"pages_read\": {}}}",
            m.engine,
            m.threads,
            m.qps,
            m.p50.as_secs_f64() * 1e6,
            m.p99.as_secs_f64() * 1e6,
            m.queue_wait_p50.as_secs_f64() * 1e6,
            m.queue_wait_p99.as_secs_f64() * 1e6,
            m.pages_read
        );
        json.push_str(if i + 1 < curve_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(
        json,
        "  \"join\": {{\n    \"a_elements\": {}, \"b_elements\": {}, \"rows\": [",
        a.len(),
        b.len()
    );
    for (i, (threads, wall, pages)) in join_curve.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"threads\": {threads}, \"join_wall_s\": {wall:.6}, \"pages_read\": {pages}}}"
        );
        json.push_str(if i + 1 < join_curve.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write(&serve_out, &json).expect("write BENCH_serve.json");

    // ---- Report -------------------------------------------------------
    println!("== observability overhead ==");
    println!(
        "serve ({} queries, {} workers): best {:.0} qps off vs {:.0} qps on ({:+.2}% overhead)",
        trace.len(),
        serve_cfg.threads,
        best_off,
        best_on,
        overhead * 100.0
    );
    println!(
        "join (4 workers): best {:.3}s off vs {:.3}s on",
        best_wall(&join_off),
        best_wall(&join_on)
    );
    println!("metric series exported when on: {metric_series}");
    let mut failed = false;
    for (name, ok) in gates {
        println!("gate {name}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    }
    println!("wrote {obs_out} and {serve_out}");
    if failed {
        std::process::exit(1);
    }
}
