//! Crash-injection child for the WAL recovery harness.
//!
//! The `crash_recovery` integration test spawns this binary once per kill
//! point. Each run is fully deterministic given its flags:
//!
//! 1. generate the base dataset, build the TRANSFORMERS index into a
//!    checksummed file image under `--dir`, adopt it into the mutable
//!    overlay (prints `meta_head <page>` — fixed from adoption on);
//! 2. open a WAL under `--dir/wal` and, with `--crash-after B`, arm the
//!    byte-clock crash hook: the append that would push total record
//!    bytes past `B` writes only a partial frame, syncs, and aborts the
//!    process — a kill mid-commit at a byte-exact position;
//! 3. replay a deterministic writes-only trace in batches, printing
//!    `committed <k>` after each batch's commit + ordered data flush.
//!
//! The parent reads the `committed` lines to learn exactly which batches
//! committed before the kill, recovers the image, and verifies the
//! restored overlay equals that prefix — committed work present,
//! uncommitted work absent. Without `--crash-after` the run completes and
//! prints `total_bytes <n>`, which the parent uses to place kill points.

use tfm_datagen::{generate, generate_mixed_trace, DatasetSpec, MixedOp, MixedTraceSpec};
use tfm_storage::{Disk, SharedPageCache, StoreBackend};
use tfm_wal::{Wal, WalOptions};
use transformers::{IndexConfig, MutableTransformers, MutationOp, TransformersIndex};

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = std::path::PathBuf::from(arg(&args, "--dir").expect("--dir DIR is required"));
    let crash_after: Option<u64> = arg(&args, "--crash-after").map(|v| v.parse().expect("bytes"));
    let count: usize = arg(&args, "--count").map_or(250, |v| v.parse().expect("count"));
    let batch: usize = arg(&args, "--batch").map_or(40, |v| v.parse().expect("batch"));
    let ops: usize = arg(&args, "--ops").map_or(320, |v| v.parse().expect("ops"));
    let seed: u64 = arg(&args, "--seed").map_or(7, |v| v.parse().expect("seed"));
    let page_size: usize = arg(&args, "--page-size").map_or(512, |v| v.parse().expect("page size"));

    let elems = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(count, seed)
    });
    let backend = StoreBackend::FileChecksummed(dir.clone());
    let disk = Disk::for_backend(&backend, page_size, "crash").expect("create data image");
    let idx = TransformersIndex::build(&disk, elems.clone(), &IndexConfig::default());
    let overlay = MutableTransformers::adopt(&idx, &disk);
    let cache = SharedPageCache::new(&disk, 4096);
    // The overlay sidecar's head page never moves after adoption; sync the
    // adopted base image so recovery starts from a durable prefix.
    disk.sync().expect("sync base image");
    println!("meta_head {}", overlay.meta_head().0);

    let wal = Wal::open(dir.join("wal"), WalOptions::default()).expect("open wal");
    wal.set_crash_after_bytes(crash_after);

    // Writes-only trace: every op mutates, so each chunk is one non-empty
    // WAL transaction. The parent regenerates the identical trace.
    let live_ids: Vec<u64> = elems.iter().map(|e| e.id).collect();
    let trace = generate_mixed_trace(&MixedTraceSpec::uniform(ops, 1000, seed), &live_ids);
    for (k, chunk) in trace.chunks(batch).enumerate() {
        let writes: Vec<MutationOp> = chunk
            .iter()
            .map(|op| match op {
                MixedOp::Insert(e) => MutationOp::Insert(*e),
                MixedOp::Delete(id) => MutationOp::Delete(*id),
                MixedOp::Query(_) => unreachable!("writes-only trace"),
            })
            .collect();
        let out = overlay.apply_batch(&wal, &cache, &writes);
        assert_eq!(out.rejected_inserts, 0, "trace must replay cleanly");
        assert_eq!(out.missing_deletes, 0, "trace must replay cleanly");
        // Only printed once the batch is durable AND its data pages are
        // flushed — the parent treats this line as the commit witness.
        println!("committed {k}");
    }
    println!("total_bytes {}", wal.appended_bytes());
}
