//! Acceptance bench of the sharded scatter-gather serve cluster —
//! emits `BENCH_shard.json` and exits non-zero when a gate fails.
//!
//! The sweep replays one uniform trace through clusters of 1/2/4/8
//! Hilbert-split shards at 1 and 2 workers per shard (two interleaved
//! rounds per configuration; best qps / lowest p95 kept), against the
//! unsharded single-threaded serve as the byte-identity reference.
//! Gates:
//!
//! * **`results_identical`** — every (shards, workers) configuration
//!   returns results byte-identical to the unsharded serve path.
//! * **`sharded_beats_single`** — ≥ 1 configuration with N > 1 shards
//!   beats the 1-shard baseline at the same worker count on throughput
//!   or p95. Multi-shard wins need no extra cores: each shard's index
//!   covers 1/N of the dataset, so a routed probe prefilters N× fewer
//!   node descriptors and the router drops shards a probe cannot match.
//! * **`slo_met`** — the best N > 1 configuration holds the p50/p95/p99
//!   SLO: each percentile within 1.5× of the 1-shard baseline's.
//!
//! Flat hand-rolled JSON (no serde_json in the offline tree); host CPU
//! model and thread count are recorded in the artifact. Scale with
//! `TFM_SCALE`; override the output path with `--out`.

use std::fmt::Write as _;
use tfm_bench::{run_serve, run_serve_sharded, scaled, RunConfig, ServeEngineKind, ShardMetrics};
use tfm_datagen::{generate, generate_trace, DatasetSpec, QueryTraceSpec};
use tfm_serve::{ServeConfig, ShardServeConfig, ShardSpec};

fn arg(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg(&args, "--out", "BENCH_shard.json");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu_model = tfm_bench::host_cpu_model();

    let dataset = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(scaled(15_000), 91)
    });
    let trace = generate_trace(&QueryTraceSpec::uniform(scaled(2_000), 92));

    // Byte-identity reference: the unsharded single-threaded serve path.
    let (_, reference) = run_serve(
        ServeEngineKind::Transformers,
        "shard-ref",
        &dataset,
        &trace,
        &RunConfig::default(),
        &ServeConfig::default(),
    );

    let shard_sweep = [1usize, 2, 4, 8];
    let worker_sweep = [1usize, 2];
    let rounds = 2;

    // Interleave rounds across configurations so every configuration
    // sees the same warm-up and thermal conditions; keep each
    // configuration's best qps and lowest p95.
    let mut best: Vec<Option<ShardMetrics>> = vec![None; shard_sweep.len() * worker_sweep.len()];
    let mut results_identical = true;
    for _round in 0..rounds {
        for (si, &shards) in shard_sweep.iter().enumerate() {
            for (wi, &workers) in worker_sweep.iter().enumerate() {
                let cfg = ShardServeConfig::default().with_workers(workers);
                let (m, results) = run_serve_sharded(
                    ServeEngineKind::Transformers,
                    "shard-sweep",
                    &dataset,
                    &trace,
                    &ShardSpec::default().with_shards(shards),
                    &cfg,
                );
                results_identical &= results == reference;
                let slot = &mut best[si * worker_sweep.len() + wi];
                let better = match slot {
                    None => true,
                    Some(b) => m.qps > b.qps,
                };
                let low_p95 = slot.as_ref().map(|b| b.p95.min(m.p95));
                if better {
                    *slot = Some(m);
                }
                if let (Some(b), Some(p95)) = (slot.as_mut(), low_p95) {
                    b.p95 = p95;
                }
            }
        }
    }
    let rows: Vec<ShardMetrics> = best.into_iter().map(Option::unwrap).collect();

    // Gate 2: some N>1 configuration beats the 1-shard baseline at the
    // same worker count on throughput or p95.
    let baseline = |workers: usize| {
        rows.iter()
            .find(|m| m.shards == 1 && m.workers_per_shard == workers)
            .expect("1-shard baseline row")
    };
    let mut sharded_beats_single = false;
    let mut winner: Option<&ShardMetrics> = None;
    for m in rows.iter().filter(|m| m.shards > 1) {
        let base = baseline(m.workers_per_shard);
        if m.qps > base.qps || m.p95 < base.p95 {
            sharded_beats_single = true;
            if winner.is_none_or(|w| m.qps > w.qps) {
                winner = Some(m);
            }
        }
    }

    // Gate 3: the winning N>1 configuration meets the latency SLO —
    // every percentile within 1.5× of its 1-shard baseline.
    const SLO_FACTOR: f64 = 1.5;
    let slo_met = winner.is_some_and(|m| {
        let base = baseline(m.workers_per_shard);
        m.p50.as_secs_f64() <= SLO_FACTOR * base.p50.as_secs_f64()
            && m.p95.as_secs_f64() <= SLO_FACTOR * base.p95.as_secs_f64()
            && m.p99.as_secs_f64() <= SLO_FACTOR * base.p99.as_secs_f64()
    });

    let gates = [
        ("results_identical", results_identical),
        ("sharded_beats_single", sharded_beats_single),
        ("slo_met", slo_met),
    ];

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {},", tfm_bench::scale());
    let _ = writeln!(
        json,
        "  \"host\": {{\"threads\": {host_threads}, \"cpu_model\": \"{cpu_model}\"}},"
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"dataset_elements\": {}, \"queries\": {}, \
         \"engine\": \"TRANSFORMERS\", \"partitioner\": \"hilbert\", \"rounds\": {rounds}}},",
        dataset.len(),
        trace.len()
    );
    let _ = writeln!(json, "  \"slo_factor_vs_single_shard\": {SLO_FACTOR},");
    json.push_str("  \"rows\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"workers_per_shard\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}, \
             \"queue_wait_p99_us\": {:.2}, \"fanout_mean\": {:.3}, \"fanout_max\": {}, \
             \"routed_partials\": {}, \"shed_partials\": {}, \
             \"max_cluster_pressure\": {:.3}, \"pages_read\": {}}}",
            m.shards,
            m.workers_per_shard,
            m.qps,
            m.p50.as_secs_f64() * 1e6,
            m.p95.as_secs_f64() * 1e6,
            m.p99.as_secs_f64() * 1e6,
            m.queue_wait_p99.as_secs_f64() * 1e6,
            m.fanout_mean,
            m.fanout_max,
            m.routed_partials,
            m.shed_partials,
            m.max_cluster_pressure,
            m.pages_read
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"gates\": {\n");
    for (i, (name, ok)) in gates.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {ok}");
        json.push_str(if i + 1 < gates.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_shard.json");

    println!("== sharded serve cluster ==");
    tfm_bench::print_shard_table(&rows);
    if let Some(w) = winner {
        let base = baseline(w.workers_per_shard);
        println!(
            "best multi-shard: {} shards x {} workers at {:.0} qps (1 shard: {:.0} qps), \
             p95 {:.1}us vs {:.1}us",
            w.shards,
            w.workers_per_shard,
            w.qps,
            base.qps,
            w.p95.as_secs_f64() * 1e6,
            base.p95.as_secs_f64() * 1e6
        );
    }
    let mut failed = false;
    for (name, ok) in gates {
        println!("gate {name}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    }
    println!("wrote {out_path}");
    if failed {
        std::process::exit(1);
    }
}
