//! Fig. 13 reproduction.
//!
//! Left: impact of transformations — TRANSFORMERS vs "No TR" (no role or
//! layout transformations) on MassiveCluster datasets of growing size
//! (skew grows with size).
//!
//! Right: threshold sensitivity — OverFit (t = 1.5), the cost model, and
//! UnderFit (t = 10⁶) across three data distributions at one size.

use tfm_bench::workloads::{massive_pair, threshold_workloads};
use tfm_bench::{print_table, run_approach, scaled, write_csv, Approach, RunConfig};
use transformers::ThresholdPolicy;

fn main() {
    let cfg = RunConfig::default();

    // Left panel: No TR vs TRANSFORMERS over growing skew
    // (paper: 50 M–350 M elements; here ÷ 1000).
    let sizes = [50_000, 150_000, 250_000, 350_000];
    let mut left_rows = Vec::new();
    for (i, base) in sizes.iter().enumerate() {
        let w = massive_pair(scaled(*base), 6000 + i as u64);
        for ap in [Approach::no_tr(), Approach::transformers()] {
            let (m, _) = run_approach(&ap, &w.name, &w.a, &w.b, &cfg);
            left_rows.push(m);
        }
    }
    print_table(
        "Fig. 13 left: impact of transformations (MassiveCluster)",
        &left_rows,
    );
    write_csv("results/fig13_transformations.csv", &left_rows).expect("write CSV");

    println!("\nspeedup of transformations (NoTR / TRANSFORMERS join time):");
    for chunk in left_rows.chunks(2) {
        println!(
            "  {:<10} {:>6.2}x  (transformations performed: {})",
            chunk[0].workload,
            chunk[0].join_time().as_secs_f64() / chunk[1].join_time().as_secs_f64(),
            chunk[1].transformations
        );
    }

    // Right panel: threshold sensitivity across distributions.
    let policies = [
        ("OverFit", ThresholdPolicy::over_fit()),
        ("CostModelFit", ThresholdPolicy::CostModel),
        ("UnderFit", ThresholdPolicy::under_fit()),
    ];
    let mut right_rows = Vec::new();
    for w in threshold_workloads(scaled(350_000), 6100) {
        for (_, policy) in &policies {
            let (m, _) = run_approach(&Approach::with_policy(*policy), &w.name, &w.a, &w.b, &cfg);
            right_rows.push(m);
        }
    }
    print_table(
        "Fig. 13 right: transformation-threshold sensitivity",
        &right_rows,
    );
    write_csv("results/fig13_thresholds.csv", &right_rows).expect("write CSV");
}
