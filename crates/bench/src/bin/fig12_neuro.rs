//! Fig. 12 reproduction: the neuroscience workload (axons × dendrites,
//! 60/40 split) — indexing time, join breakdown and intersection tests.
//!
//! The paper joins 100 M–350 M cylinders of a rat-brain model; we use the
//! surrogate generator (`tfm_datagen::neuro`, see DESIGN.md substitution 3)
//! at 100 K–350 K (paper ÷ 1000), scaled by `TFM_SCALE`. PBSM uses 20
//! partitions per dimension for this workload, as in §VII-A.

use tfm_bench::workloads::neuro_pair;
use tfm_bench::{print_table, run_approach, scaled, write_csv, Approach, RunConfig};

fn main() {
    let cfg = RunConfig {
        pbsm_partitions: 20,
        ..RunConfig::default()
    };
    let sizes = [100_000, 250_000, 350_000];
    let approaches = [Approach::transformers(), Approach::Pbsm, Approach::Rtree];

    let mut rows = Vec::new();
    for (i, base) in sizes.iter().enumerate() {
        let w = neuro_pair(scaled(*base), 5000 + i as u64);
        for ap in &approaches {
            let (m, _) = run_approach(ap, &w.name, &w.a, &w.b, &cfg);
            rows.push(m);
        }
    }

    print_table("Fig. 12: neuroscience data (axons x dendrites)", &rows);
    write_csv("results/fig12_neuro.csv", &rows).expect("write CSV");

    println!("\nFig. 12 middle (join breakdown, seconds: io + cpu):");
    for m in &rows {
        println!(
            "  {:<10} {:<14} io={:>8.3} cpu={:>8.3} total={:>8.3}",
            m.workload,
            m.approach,
            m.join_sim_io.as_secs_f64(),
            m.join_wall.as_secs_f64(),
            m.join_time().as_secs_f64()
        );
    }
}
