//! Read-path tuning gate — join prefetch pipeline, scan-resistant 2Q
//! admission, and readahead sizing.
//!
//! Three gates over two experiments:
//!
//! 1. **Join prefetch ≥ 1.3×.** Four cold-cache parallel TRANSFORMERS
//!    joins over one uniform workload pair: a mem-backend reference, a
//!    file-backend demand-paged run under injected device read latency
//!    ([`RunConfig::read_latency`]), and two prefetching runs (CLOCK and
//!    2Q) with `io_depth` dedicated I/O threads following each chunk's
//!    unit-page schedule. All four must return byte-identical pairs, and
//!    the prefetch run must beat demand paging by ≥ 1.3× join wall time —
//!    the latency is paid overlapped on the I/O threads instead of on the
//!    workers' critical path.
//! 2. **2Q ≥ CLOCK under a scan+point mix.** A direct
//!    [`SharedPageCache`] microbench interleaves a re-read hot set
//!    (point phase, every page touched twice so 2Q promotes it) with a
//!    one-pass scan wider than the cache. 2Q must match or beat CLOCK's
//!    hit fraction *and* re-miss the hot set strictly less often — the
//!    scan-resistance claim: one-pass pages die in the probationary
//!    queue instead of flushing the protected set.
//! 3. **Unused prefetch < 20%.** From gate 1's prefetch run: the chunk
//!    schedule is derived from the pivot run actually joined, so on the
//!    uniform trace a well-sized readahead window must leave fewer than
//!    20% of issued pages unread.
//!
//! Results go to `BENCH_tune.json` (flat hand-rolled JSON with host
//! provenance); the process exits non-zero when a gate fails. Scale with
//! `TFM_SCALE`; `--dir PATH` picks the page-image directory, `--out
//! PATH` the report path.

use std::fmt::Write as _;
use tfm_bench::{run_approach, scaled, Approach, Metrics, RunConfig};
use tfm_datagen::{generate, DatasetSpec};
use tfm_storage::{CachePolicy, Disk, DiskModel, PageId, SharedPageCache, StoreBackend};
use transformers::JoinConfig;

/// Queue depth of the prefetching join runs (gate requires ≥ 4).
const IO_DEPTH: usize = 8;
/// Readahead window in pages of the prefetching join runs.
const READAHEAD: usize = 512;
/// Join workers of every parallel run.
const JOIN_THREADS: usize = 2;
/// Device-latency injection scale for the throttled runs: cold-miss
/// latency must dominate the join wall clock (the regime the paper's
/// 10 kRPM SAS experiments run in) while keeping the bench in seconds.
const LATENCY: f64 = 0.25;

/// Microbench geometry: hot pages re-read every round (each touched
/// twice, so 2Q promotes them to the protected queue) ...
const HOT_PAGES: u64 = 64;
/// ... cache frames (hot set fits; one scan round does not) ...
const CACHE_FRAMES: usize = 256;
/// ... one-pass scan pages per round, and rounds. Scan pages are never
/// revisited: `HOT_PAGES + SCAN_ROUNDS * SCAN_PER_ROUND` distinct pages.
const SCAN_PER_ROUND: u64 = 240;
const SCAN_ROUNDS: u64 = 8;

fn arg(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

/// One scan+point run of the decoded-tier microbench: returns the
/// cache's overall hit fraction and how often the hot set re-missed
/// after its warmup pass (each re-miss is one hot page the interleaved
/// scans evicted).
fn scan_point_microbench(policy: CachePolicy) -> (f64, u64) {
    let n_pages = HOT_PAGES + SCAN_ROUNDS * SCAN_PER_ROUND;
    let d = Disk::in_memory(64).with_model(DiskModel::free());
    let first = d.allocate_contiguous(n_pages);
    for i in 0..n_pages {
        d.write_page(PageId(first.0 + i), &[i as u8]);
    }
    let cache = SharedPageCache::with_policy(&d, CACHE_FRAMES, 1, policy);
    // Warmup: the hot set's cold misses are the same under any policy
    // and not what the gate measures.
    for i in 0..HOT_PAGES {
        cache.read(PageId(first.0 + i));
        cache.read(PageId(first.0 + i));
    }
    cache.reset_stats();
    let mut hot_remisses = 0;
    let mut scan_pos = HOT_PAGES;
    for _ in 0..SCAN_ROUNDS {
        let before = cache.stats();
        for i in 0..HOT_PAGES {
            // Two accesses per round: a point workload revisits its
            // working set, which is exactly what 2Q's A1in → Am
            // promotion rewards.
            cache.read(PageId(first.0 + i));
            cache.read(PageId(first.0 + i));
        }
        hot_remisses += cache.stats().delta_since(&before).misses;
        // One-pass scan, wider than the cache, never revisited.
        for _ in 0..SCAN_PER_ROUND {
            cache.read(PageId(first.0 + scan_pos));
            scan_pos += 1;
        }
    }
    (cache.stats().hit_fraction(), hot_remisses)
}

fn json_join_row(out: &mut String, label: &str, latency: f64, policy: &str, m: &Metrics) {
    let _ = write!(
        out,
        "    {{\"run\": \"{}\", \"read_latency\": {}, \"cache_policy\": \"{}\", \
         \"join_wall_s\": {:.6}, \"pages_read\": {}, \"pool_hits\": {}, \
         \"prefetch_issued\": {}, \"prefetch_hits\": {}, \"prefetch_unused\": {}, \
         \"results\": {}}}",
        label,
        latency,
        policy,
        m.join_wall.as_secs_f64(),
        m.pages_read,
        m.pool_hits,
        m.prefetch_issued,
        m.prefetch_hits,
        m.prefetch_unused,
        m.results,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = arg(&args, "--out", "BENCH_tune.json");
    let default_dir = std::env::temp_dir()
        .join(format!("tfm_bench_tune_{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let dir = std::path::PathBuf::from(arg(&args, "--dir", &default_dir));

    let a = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(scaled(12_000), 71)
    });
    let b = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(scaled(12_000), 72)
    });

    // Every run builds fresh indexes and a cold cache; the gate compares
    // join wall time only (index building never prefetches).
    let run_join = |backend: StoreBackend, latency: f64, join_cfg: JoinConfig| {
        let cfg = RunConfig {
            backend,
            read_latency: latency,
            ..RunConfig::default()
        };
        run_approach(
            &Approach::TransformersParallel(join_cfg, JOIN_THREADS),
            "tune-uniform",
            &a,
            &b,
            &cfg,
        )
    };
    let prefetch_cfg = JoinConfig::default()
        .with_io_depth(IO_DEPTH)
        .with_readahead(READAHEAD);

    let (mem, mem_pairs) = run_join(StoreBackend::Mem, 0.0, JoinConfig::default());
    let (demand, demand_pairs) = run_join(
        StoreBackend::File(dir.clone()),
        LATENCY,
        JoinConfig::default(),
    );
    let (pf, pf_pairs) = run_join(StoreBackend::File(dir.clone()), LATENCY, prefetch_cfg);
    let (pf_2q, pf_2q_pairs) = run_join(
        StoreBackend::File(dir.clone()),
        LATENCY,
        prefetch_cfg.with_cache_policy(CachePolicy::TwoQ),
    );

    let outputs_identical =
        demand_pairs == mem_pairs && pf_pairs == mem_pairs && pf_2q_pairs == mem_pairs;
    let speedup = if pf.join_wall.as_secs_f64() > 0.0 {
        demand.join_wall.as_secs_f64() / pf.join_wall.as_secs_f64()
    } else {
        0.0
    };
    let unused_fraction = if pf.prefetch_issued > 0 {
        pf.prefetch_unused as f64 / pf.prefetch_issued as f64
    } else {
        1.0
    };

    let (clock_hit, clock_remisses) = scan_point_microbench(CachePolicy::Clock);
    let (twoq_hit, twoq_remisses) = scan_point_microbench(CachePolicy::TwoQ);

    let gates = [
        ("outputs_identical", outputs_identical),
        ("join_prefetch_speedup_1_3x", speedup >= 1.3),
        (
            "join_prefetch_pipeline_used",
            pf.prefetch_issued > 0 && pf.prefetch_hits > 0,
        ),
        ("twoq_hit_fraction_ge_clock", twoq_hit >= clock_hit),
        ("twoq_fewer_hot_evictions", twoq_remisses < clock_remisses),
        ("unused_prefetch_below_20pct", unused_fraction < 0.20),
    ];

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu_model = tfm_bench::host_cpu_model();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {},", tfm_bench::scale());
    let _ = writeln!(
        json,
        "  \"host\": {{\"threads\": {host_threads}, \"cpu_model\": \"{cpu_model}\"}},"
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"n_a\": {}, \"n_b\": {}, \"join_threads\": {}, \
         \"io_depth\": {IO_DEPTH}, \"readahead\": {READAHEAD}, \"store_dir\": \"{}\"}},",
        a.len(),
        b.len(),
        JOIN_THREADS,
        dir.display()
    );
    let _ = writeln!(json, "  \"join_prefetch_speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"unused_prefetch_fraction\": {unused_fraction:.4},"
    );
    let _ = writeln!(
        json,
        "  \"scan_point_microbench\": {{\"cache_frames\": {CACHE_FRAMES}, \
         \"hot_pages\": {HOT_PAGES}, \"scan_rounds\": {SCAN_ROUNDS}, \
         \"scan_per_round\": {SCAN_PER_ROUND}, \
         \"clock\": {{\"hit_fraction\": {clock_hit:.4}, \"hot_remisses\": {clock_remisses}}}, \
         \"twoq\": {{\"hit_fraction\": {twoq_hit:.4}, \"hot_remisses\": {twoq_remisses}}}}},"
    );
    json.push_str("  \"rows\": [\n");
    let rows: [(&str, f64, &str, &Metrics); 4] = [
        ("mem", 0.0, "clock", &mem),
        ("file-demand", LATENCY, "clock", &demand),
        ("file-prefetch", LATENCY, "clock", &pf),
        ("file-prefetch-2q", LATENCY, "2q", &pf_2q),
    ];
    for (i, (label, latency, policy, m)) in rows.iter().enumerate() {
        json_join_row(&mut json, label, *latency, policy, m);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"gates\": {\n");
    for (i, (name, ok)) in gates.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {ok}");
        json.push_str(if i + 1 < gates.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_tune.json");

    println!("== read-path tuning: join prefetch + 2Q admission ==");
    println!(
        "join: mem {:.3}s | demand {:.3}s | prefetch depth{} {:.3}s | prefetch 2q {:.3}s",
        mem.join_wall.as_secs_f64(),
        demand.join_wall.as_secs_f64(),
        IO_DEPTH,
        pf.join_wall.as_secs_f64(),
        pf_2q.join_wall.as_secs_f64(),
    );
    println!(
        "join prefetch speedup {speedup:.2}x (gate >= 1.3x); issued {} hit {} unused {} \
         ({:.1}% unused, gate < 20%)",
        pf.prefetch_issued,
        pf.prefetch_hits,
        pf.prefetch_unused,
        unused_fraction * 100.0,
    );
    println!(
        "scan+point: clock hit {:.3} remisses {} | 2q hit {:.3} remisses {}",
        clock_hit, clock_remisses, twoq_hit, twoq_remisses
    );
    let mut failed = false;
    for (name, ok) in gates {
        println!("gate {name}: {}", if ok { "PASS" } else { "FAIL" });
        failed |= !ok;
    }
    println!("wrote {out_path}");
    // Only remove page images this run created itself.
    if arg(&args, "--dir", &default_dir) == default_dir {
        std::fs::remove_dir_all(&dir).ok();
    }
    if failed {
        std::process::exit(1);
    }
}
