//! Uniform approach runner: executes one join approach on one workload and
//! returns comparable [`Metrics`].
//!
//! All approaches run on fresh in-memory simulated disks with the same page
//! size and buffer-pool capacity; indexing and join phases are measured
//! separately (the paper reports them separately, §VII-C2: "the results of
//! the join, excluding the index building time").

use std::time::{Duration, Instant};
use tfm_geom::{Aabb, SpatialElement};
use tfm_gipsy::{gipsy_join, GipsyConfig, GipsyStats, SparseFile};
use tfm_memjoin::ResultPair;
use tfm_pbsm::{pbsm_join, pbsm_partition, PbsmConfig, PbsmStats};
use tfm_rtree::{sync_join, RTree, RtreeStats};
use tfm_storage::{BufferPool, CacheHandle, Disk, IoStatsSnapshot, SharedPageCache, StoreBackend};
use transformers::{
    transformers_join, IndexBuildPipeline, IndexConfig, JoinConfig, ThresholdPolicy,
    TransformersIndex,
};

/// Which join approach to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Approach {
    /// TRANSFORMERS with the given join configuration.
    Transformers(JoinConfig),
    /// TRANSFORMERS executed by the parallel subsystem (`tfm-exec`) with
    /// the given join configuration and worker count.
    TransformersParallel(JoinConfig, usize),
    /// PBSM (space-oriented partitioning baseline).
    Pbsm,
    /// Synchronized R-Tree traversal (data-oriented baseline).
    Rtree,
    /// GIPSY (crawling baseline; the smaller dataset is declared sparse).
    Gipsy,
    /// SSSJ (related-work baseline, §VIII-B): strips + plane sweep.
    Sssj,
    /// S3 size-separation join (related-work baseline, §VIII-B).
    S3,
}

impl Approach {
    /// TRANSFORMERS with default (cost-model) configuration.
    pub fn transformers() -> Self {
        Approach::Transformers(JoinConfig::default())
    }

    /// Parallel TRANSFORMERS with default configuration and `threads`
    /// workers: fully adaptive — in-chunk role transformations plus
    /// cross-worker to-do-list pruning over the shared coverage board.
    pub fn parallel(threads: usize) -> Self {
        Approach::TransformersParallel(JoinConfig::default(), threads)
    }

    /// Parallel TRANSFORMERS with `threads` fully *independent* workers
    /// (no role transformations, no cross-worker pruning) — the PR 1
    /// execution mode, kept as the ablation baseline for the adaptive
    /// parallel path.
    pub fn parallel_independent(threads: usize) -> Self {
        Approach::TransformersParallel(
            JoinConfig::default()
                .without_worker_transforms()
                .without_cross_worker_pruning(),
            threads,
        )
    }

    /// TRANSFORMERS with transformations disabled ("No TR", Fig. 13).
    pub fn no_tr() -> Self {
        Approach::Transformers(JoinConfig::without_transformations())
    }

    /// TRANSFORMERS with a specific threshold policy (Fig. 13 right).
    pub fn with_policy(policy: ThresholdPolicy) -> Self {
        Approach::Transformers(JoinConfig::default().with_thresholds(policy))
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Approach::Transformers(cfg) => match cfg.thresholds {
                ThresholdPolicy::Disabled => "NoTR".into(),
                ThresholdPolicy::CostModel => "TRANSFORMERS".into(),
                ThresholdPolicy::Fixed { t_su, .. } if t_su <= 2.0 => "TR-OverFit".into(),
                ThresholdPolicy::Fixed { t_su, .. } if t_su >= 1e5 => "TR-UnderFit".into(),
                ThresholdPolicy::Fixed { .. } => "TR-Fixed".into(),
            },
            Approach::TransformersParallel(cfg, threads) => {
                let mut label = format!("TFM-PARx{threads}");
                if !cfg.worker_role_transforms {
                    label.push_str("-noTR");
                }
                if !cfg.cross_worker_pruning {
                    label.push_str("-noPrune");
                }
                if !cfg.shared_cache {
                    label.push_str("-privPool");
                }
                label
            }
            Approach::Pbsm => "PBSM".into(),
            Approach::Rtree => "R-TREE".into(),
            Approach::Gipsy => "GIPSY".into(),
            Approach::Sssj => "SSSJ".into(),
            Approach::S3 => "S3".into(),
        }
    }
}

/// Harness-wide run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Page size for every disk. The default (2 KiB) shrinks space units
    /// and nodes proportionally to the laptop-scale datasets, preserving
    /// the paper's elements-per-node *relationship* (see `DESIGN.md`).
    pub page_size: usize,
    /// PBSM grid cells per dimension (paper: 10³ partitions for synthetic
    /// data, 20³ for neuroscience).
    pub pbsm_partitions: usize,
    /// Buffer-pool capacity in pages, shared by all approaches.
    pub pool_pages: usize,
    /// Worker threads for the index-build phase of the STR-indexed
    /// approaches (TRANSFORMERS, GIPSY's two sides, the R-Tree). Builds
    /// are byte-identical at any setting; only `index_wall` changes.
    pub build_threads: usize,
    /// Read join-phase pages through the process-wide shared page cache
    /// (the default read path). `false` is the `--private-pool` ablation:
    /// every reader owns a private pool again. Results are identical
    /// either way.
    pub shared_cache: bool,
    /// Storage backend every disk of the run is created with. The
    /// default [`StoreBackend::Mem`] preserves the historical in-memory
    /// behaviour; [`StoreBackend::File`] writes one page image per disk
    /// (tagged by role) under the given directory and reads it back with
    /// positional I/O. Results are byte-identical either way.
    pub backend: StoreBackend,
    /// Device read-latency injection scale, forwarded to
    /// [`Disk::with_read_latency`]: each page read sleeps
    /// `model cost × scale` on the reading thread. `0.0` (the default)
    /// disables injection; non-zero values make cold-cache wall time
    /// track the [`tfm_storage::DiskModel`] so queue-depth experiments
    /// behave like a real device even on one core.
    pub read_latency: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            page_size: 2048,
            pbsm_partitions: 10,
            pool_pages: 1024,
            build_threads: 1,
            shared_cache: true,
            backend: StoreBackend::Mem,
            read_latency: 0.0,
        }
    }
}

impl RunConfig {
    /// Creates one disk of this run. `tag` names the page image when the
    /// backend is a file directory (`<dir>/<tag>.pages`); the mem backend
    /// ignores it.
    pub fn disk(&self, tag: &str) -> Disk {
        Disk::for_backend(&self.backend, self.page_size, tag)
            .expect("run disk backend")
            .with_read_latency(self.read_latency)
    }
}

/// Comparable measurements of one (approach, workload) execution.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Approach label.
    pub approach: String,
    /// Workload label.
    pub workload: String,
    /// |A| and |B|.
    pub n_a: usize,
    /// Number of elements in dataset B.
    pub n_b: usize,
    /// Wall-clock time of the indexing phase.
    pub index_wall: Duration,
    /// Simulated device time of the indexing phase.
    pub index_sim_io: Duration,
    /// Wall-clock (CPU) time of the join phase.
    pub join_wall: Duration,
    /// Simulated device time of the join phase.
    pub join_sim_io: Duration,
    /// Pages read from disk during the join.
    pub pages_read: u64,
    /// Page-cache hits during the join (TRANSFORMERS paths only; the
    /// other baselines keep their private pools out of `Metrics`).
    pub pool_hits: u64,
    /// Random reads during the join.
    pub rand_reads: u64,
    /// Sequential reads during the join.
    pub seq_reads: u64,
    /// Intersection tests (element-level; for TRANSFORMERS this includes
    /// metadata comparisons, matching the paper's Fig. 11 convention).
    pub tests: u64,
    /// Result pairs (deduplicated).
    pub results: u64,
    /// Transformations performed (TRANSFORMERS only).
    pub transformations: u64,
    /// Exploration overhead wall time (TRANSFORMERS only; Fig. 14).
    pub overhead_wall: Duration,
    /// Build workers used for the indexing phase (1 = sequential build;
    /// approaches without an STR build phase ignore the setting).
    pub build_threads: usize,
    /// Pages the join prefetch pipeline landed into cache frames
    /// (parallel TRANSFORMERS with readahead on; 0 otherwise).
    pub prefetch_issued: u64,
    /// Demand reads served by a frame the prefetch pipeline had staged.
    pub prefetch_hits: u64,
    /// Prefetched frames never touched by a demand read — a mis-sized
    /// readahead window shows up here.
    pub prefetch_unused: u64,
}

impl Metrics {
    /// Total indexing time: simulated I/O + CPU.
    pub fn index_time(&self) -> Duration {
        self.index_wall + self.index_sim_io
    }

    /// Total join time: simulated I/O + CPU. This is the quantity the
    /// figure reproductions plot as "join time".
    pub fn join_time(&self) -> Duration {
        self.join_wall + self.join_sim_io
    }

    fn base(
        approach: &Approach,
        workload: &str,
        a: &[SpatialElement],
        b: &[SpatialElement],
    ) -> Self {
        Self {
            approach: approach.label(),
            workload: workload.to_string(),
            n_a: a.len(),
            n_b: b.len(),
            index_wall: Duration::ZERO,
            index_sim_io: Duration::ZERO,
            join_wall: Duration::ZERO,
            join_sim_io: Duration::ZERO,
            pages_read: 0,
            pool_hits: 0,
            rand_reads: 0,
            seq_reads: 0,
            tests: 0,
            results: 0,
            transformations: 0,
            overhead_wall: Duration::ZERO,
            build_threads: 1,
            prefetch_issued: 0,
            prefetch_hits: 0,
            prefetch_unused: 0,
        }
    }
}

fn merged(a: &Disk, b: &Disk) -> IoStatsSnapshot {
    a.stats().merged(&b.stats())
}

/// Runs `approach` on the pair `(a, b)` and returns metrics (and the result
/// pairs, oriented `(id in A, id in B)`, for correctness checks).
pub fn run_approach(
    approach: &Approach,
    workload: &str,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
) -> (Metrics, Vec<ResultPair>) {
    let mut m = Metrics::base(approach, workload, a, b);
    m.build_threads = cfg.build_threads.max(1);
    match approach {
        Approach::Transformers(join_cfg) => run_transformers(&mut m, a, b, cfg, join_cfg),
        Approach::TransformersParallel(join_cfg, threads) => {
            run_transformers_parallel(&mut m, a, b, cfg, join_cfg, *threads)
        }
        Approach::Pbsm => run_pbsm(&mut m, a, b, cfg),
        Approach::Rtree => run_rtree(&mut m, a, b, cfg),
        Approach::Gipsy => run_gipsy(&mut m, a, b, cfg),
        Approach::Sssj => run_sssj(&mut m, a, b, cfg),
        Approach::S3 => run_s3(&mut m, a, b, cfg),
    }
}

/// [`run_approach`] with the steal-skew feedback loop closed through a
/// persistent [`crate::SkewStore`] sidecar.
///
/// For the parallel TRANSFORMERS approach: a skew fraction recorded for
/// `workload` by a previous run is injected as
/// [`JoinConfig::recorded_steal_skew`] (unless the caller already set
/// one), and the run's observed [`tfm_exec::ExecReport::steal_fraction`]
/// is written back — so the *second* run of any workload sizes its chunks
/// adaptively with no manual `with_recorded_skew` plumbing. The store is
/// updated in memory; the caller decides when to
/// [`save`](crate::SkewStore::save). Other approaches pass through
/// unchanged.
pub fn run_approach_with_skew(
    approach: &Approach,
    workload: &str,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
    store: &mut crate::SkewStore,
) -> (Metrics, Vec<ResultPair>) {
    let Approach::TransformersParallel(join_cfg, threads) = approach else {
        return run_approach(approach, workload, a, b, cfg);
    };
    let mut join_cfg = *join_cfg;
    if join_cfg.recorded_steal_skew.is_none() {
        if let Some(skew) = store.recorded(workload) {
            join_cfg = join_cfg.with_recorded_skew(skew);
        }
    }
    let mut m = Metrics::base(approach, workload, a, b);
    m.build_threads = cfg.build_threads.max(1);
    let threads = *threads;
    let mut report = None;
    let (m, pairs) = run_transformers_with(
        &mut m,
        a,
        b,
        cfg,
        &join_cfg,
        |idx_a, disk_a, idx_b, disk_b, jc| {
            let (out, rep) =
                tfm_exec::parallel_join_with_report(idx_a, disk_a, idx_b, disk_b, jc, threads);
            report = Some(rep);
            out
        },
    );
    let mut m = m;
    if let Some(report) = report {
        store.record(workload, report.steal_fraction());
        m.prefetch_issued = report.prefetch_issued;
        m.prefetch_hits = report.prefetch_hits;
        m.prefetch_unused = report.prefetch_unused;
    }
    (m, pairs)
}

fn run_sssj(
    m: &mut Metrics,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
) -> (Metrics, Vec<ResultPair>) {
    use tfm_sweep::sssj::{sssj_join, sssj_partition, SssjStats};
    let disk_a = cfg.disk("sssj_a");
    let disk_b = cfg.disk("sssj_b");
    let extent = Aabb::union_all(a.iter().chain(b.iter()).map(|e| e.mbb));
    let mut stats = SssjStats::default();
    // Strip count comparable to PBSM's tiling along one dimension squared.
    let strips = cfg.pbsm_partitions.pow(2);

    let t = Instant::now();
    let parts = if extent.is_empty() {
        None
    } else {
        Some((
            sssj_partition(&disk_a, a, extent, strips, &mut stats),
            sssj_partition(&disk_b, b, extent, strips, &mut stats),
        ))
    };
    m.index_wall = t.elapsed();
    m.index_sim_io = merged(&disk_a, &disk_b).sim_io_time();

    disk_a.reset_stats();
    disk_b.reset_stats();
    let pairs = if let Some((pa, pb)) = &parts {
        let mut pool_a = BufferPool::new(&disk_a, cfg.pool_pages);
        let mut pool_b = BufferPool::new(&disk_b, cfg.pool_pages);
        let t = Instant::now();
        let pairs = sssj_join(&mut pool_a, pa, &mut pool_b, pb, &mut stats);
        m.join_wall = t.elapsed();
        pairs
    } else {
        Vec::new()
    };
    let io = merged(&disk_a, &disk_b);
    m.join_sim_io = io.sim_io_time();
    m.pages_read = io.reads();
    m.rand_reads = io.rand_reads;
    m.seq_reads = io.seq_reads;
    m.tests = stats.mem.element_tests;
    m.results = pairs.len() as u64;
    (m.clone(), pairs)
}

fn run_s3(
    m: &mut Metrics,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
) -> (Metrics, Vec<ResultPair>) {
    use tfm_sweep::s3::{s3_join, s3_partition, S3Stats};
    let disk_a = cfg.disk("s3_a");
    let disk_b = cfg.disk("s3_b");
    let extent = Aabb::union_all(a.iter().chain(b.iter()).map(|e| e.mbb));
    let mut stats = S3Stats::default();
    // Depth such that the deepest level's cells hold roughly a page of
    // elements: 2^(levels-1) cells per dimension ≈ cbrt(pages of the larger
    // dataset).
    let cap = ((cfg.page_size - 2) / 56).max(1);
    let pages = (a.len().max(b.len()) as f64 / cap as f64).max(1.0);
    let levels = ((pages.cbrt().log2().round() as i64) + 1).clamp(2, 8) as u8;

    let t = Instant::now();
    let parts = if extent.is_empty() {
        None
    } else {
        Some((
            s3_partition(&disk_a, a, extent, levels, &mut stats),
            s3_partition(&disk_b, b, extent, levels, &mut stats),
        ))
    };
    m.index_wall = t.elapsed();
    m.index_sim_io = merged(&disk_a, &disk_b).sim_io_time();

    disk_a.reset_stats();
    disk_b.reset_stats();
    let pairs = if let Some((pa, pb)) = &parts {
        let mut pool_a = BufferPool::new(&disk_a, cfg.pool_pages);
        let mut pool_b = BufferPool::new(&disk_b, cfg.pool_pages);
        let t = Instant::now();
        let pairs = s3_join(&mut pool_a, pa, &mut pool_b, pb, &mut stats);
        m.join_wall = t.elapsed();
        pairs
    } else {
        Vec::new()
    };
    let io = merged(&disk_a, &disk_b);
    m.join_sim_io = io.sim_io_time();
    m.pages_read = io.reads();
    m.rand_reads = io.rand_reads;
    m.seq_reads = io.seq_reads;
    m.tests = stats.mem.element_tests;
    m.results = pairs.len() as u64;
    (m.clone(), pairs)
}

fn run_transformers(
    m: &mut Metrics,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
    join_cfg: &JoinConfig,
) -> (Metrics, Vec<ResultPair>) {
    run_transformers_with(m, a, b, cfg, join_cfg, transformers_join)
}

fn run_transformers_parallel(
    m: &mut Metrics,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
    join_cfg: &JoinConfig,
    threads: usize,
) -> (Metrics, Vec<ResultPair>) {
    let mut report = None;
    let (mut m, pairs) = run_transformers_with(
        m,
        a,
        b,
        cfg,
        join_cfg,
        |idx_a, disk_a, idx_b, disk_b, jc| {
            let (out, rep) =
                tfm_exec::parallel_join_with_report(idx_a, disk_a, idx_b, disk_b, jc, threads);
            report = Some(rep);
            out
        },
    );
    if let Some(rep) = report {
        m.prefetch_issued = rep.prefetch_issued;
        m.prefetch_hits = rep.prefetch_hits;
        m.prefetch_unused = rep.prefetch_unused;
    }
    (m, pairs)
}

/// Shared harness for the sequential and parallel TRANSFORMERS runners:
/// builds the indexes, resets I/O accounting, runs `join`, and extracts
/// the common metrics.
fn run_transformers_with(
    m: &mut Metrics,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
    join_cfg: &JoinConfig,
    join: impl FnOnce(
        &TransformersIndex,
        &Disk,
        &TransformersIndex,
        &Disk,
        &JoinConfig,
    ) -> transformers::JoinOutcome,
) -> (Metrics, Vec<ResultPair>) {
    let disk_a = cfg.disk("tfm_a");
    let disk_b = cfg.disk("tfm_b");
    let idx_cfg = IndexConfig::default().with_build_threads(cfg.build_threads);

    let t = Instant::now();
    let idx_a = TransformersIndex::build(&disk_a, a.to_vec(), &idx_cfg);
    let idx_b = TransformersIndex::build(&disk_b, b.to_vec(), &idx_cfg);
    m.index_wall = t.elapsed();
    m.index_sim_io = merged(&disk_a, &disk_b).sim_io_time();

    disk_a.reset_stats();
    disk_b.reset_stats();
    let join_cfg = JoinConfig {
        pool_pages: cfg.pool_pages,
        // Either switch can select the private-pool ablation.
        shared_cache: join_cfg.shared_cache && cfg.shared_cache,
        ..*join_cfg
    };
    // Label the row with the *effective* cache mode (the Approach label
    // cannot see RunConfig, and the sequential label has no mode suffix).
    if !join_cfg.shared_cache && !m.approach.contains("-privPool") {
        m.approach.push_str("-privPool");
    }
    let t = Instant::now();
    let out = join(&idx_a, &disk_a, &idx_b, &disk_b, &join_cfg);
    m.join_wall = t.elapsed();
    let io = merged(&disk_a, &disk_b);
    m.join_sim_io = io.sim_io_time();
    m.pages_read = io.reads();
    m.rand_reads = io.rand_reads;
    m.seq_reads = io.seq_reads;
    m.tests = out.stats.total_tests();
    m.results = out.stats.unique_results;
    m.transformations = out.stats.transformations();
    m.overhead_wall = out.stats.exploration_overhead;
    m.pool_hits = out.stats.pool_hits;
    (m.clone(), out.pairs)
}

fn run_pbsm(
    m: &mut Metrics,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
) -> (Metrics, Vec<ResultPair>) {
    let disk_a = cfg.disk("pbsm_a");
    let disk_b = cfg.disk("pbsm_b");
    let pbsm_cfg = PbsmConfig::with_partitions(cfg.pbsm_partitions);
    let extent = Aabb::union_all(a.iter().chain(b.iter()).map(|e| e.mbb));
    let mut stats = PbsmStats::default();

    let t = Instant::now();
    let (part_a, part_b) = if extent.is_empty() {
        (None, None)
    } else {
        (
            Some(pbsm_partition(&disk_a, a, extent, &pbsm_cfg, &mut stats)),
            Some(pbsm_partition(&disk_b, b, extent, &pbsm_cfg, &mut stats)),
        )
    };
    m.index_wall = t.elapsed();
    m.index_sim_io = merged(&disk_a, &disk_b).sim_io_time();

    disk_a.reset_stats();
    disk_b.reset_stats();
    let pairs = if let (Some(pa), Some(pb)) = (&part_a, &part_b) {
        let mut pool_a = BufferPool::new(&disk_a, cfg.pool_pages);
        let mut pool_b = BufferPool::new(&disk_b, cfg.pool_pages);
        let t = Instant::now();
        let pairs = pbsm_join(&mut pool_a, pa, &mut pool_b, pb, &pbsm_cfg, &mut stats);
        m.join_wall = t.elapsed();
        pairs
    } else {
        Vec::new()
    };
    let io = merged(&disk_a, &disk_b);
    m.join_sim_io = io.sim_io_time();
    m.pages_read = io.reads();
    m.rand_reads = io.rand_reads;
    m.seq_reads = io.seq_reads;
    m.tests = stats.mem.element_tests;
    m.results = pairs.len() as u64;
    (m.clone(), pairs)
}

fn run_rtree(
    m: &mut Metrics,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
) -> (Metrics, Vec<ResultPair>) {
    let disk_a = cfg.disk("rtree_a");
    let disk_b = cfg.disk("rtree_b");

    let pipeline = IndexBuildPipeline::new(cfg.build_threads);
    let t = Instant::now();
    let tree_a = RTree::bulk_load_pipelined(&disk_a, a.to_vec(), &pipeline);
    let tree_b = RTree::bulk_load_pipelined(&disk_b, b.to_vec(), &pipeline);
    m.index_wall = t.elapsed();
    m.index_sim_io = merged(&disk_a, &disk_b).sim_io_time();

    disk_a.reset_stats();
    disk_b.reset_stats();
    let mut stats = RtreeStats::default();
    let t = Instant::now();
    // The synchronized traversal reads node pages through the shared
    // cache by default (pin guards, recycled frames); `--private-pool`
    // restores the classic per-tree pools.
    let pairs = if cfg.shared_cache {
        let cache_a = SharedPageCache::with_shards(&disk_a, cfg.pool_pages, 1);
        let cache_b = SharedPageCache::with_shards(&disk_b, cfg.pool_pages, 1);
        let mut handle_a = CacheHandle::shared(&cache_a);
        let mut handle_b = CacheHandle::shared(&cache_b);
        sync_join(&mut handle_a, &tree_a, &mut handle_b, &tree_b, &mut stats)
    } else {
        let mut pool_a = BufferPool::new(&disk_a, cfg.pool_pages);
        let mut pool_b = BufferPool::new(&disk_b, cfg.pool_pages);
        sync_join(&mut pool_a, &tree_a, &mut pool_b, &tree_b, &mut stats)
    };
    m.join_wall = t.elapsed();
    let io = merged(&disk_a, &disk_b);
    m.join_sim_io = io.sim_io_time();
    m.pages_read = io.reads();
    m.rand_reads = io.rand_reads;
    m.seq_reads = io.seq_reads;
    m.tests = stats.mem.element_tests;
    m.results = pairs.len() as u64;
    (m.clone(), pairs)
}

fn run_gipsy(
    m: &mut Metrics,
    a: &[SpatialElement],
    b: &[SpatialElement],
    cfg: &RunConfig,
) -> (Metrics, Vec<ResultPair>) {
    // GIPSY requires the sparse dataset to be known in advance (paper
    // §VIII-A: "the performance of GIPSY relies on the ability to
    // predetermine which dataset is dense and which one is sparse").
    let a_is_sparse = a.len() <= b.len();
    let (sparse, dense) = if a_is_sparse { (a, b) } else { (b, a) };

    let sparse_disk = cfg.disk("gipsy_sparse");
    let dense_disk = cfg.disk("gipsy_dense");

    let pipeline = IndexBuildPipeline::new(cfg.build_threads);
    let idx_cfg = IndexConfig::default().with_build_threads(cfg.build_threads);
    let t = Instant::now();
    let sparse_file = SparseFile::write_with(&sparse_disk, sparse.to_vec(), &pipeline);
    let dense_idx = TransformersIndex::build(&dense_disk, dense.to_vec(), &idx_cfg);
    m.index_wall = t.elapsed();
    m.index_sim_io = merged(&sparse_disk, &dense_disk).sim_io_time();

    sparse_disk.reset_stats();
    dense_disk.reset_stats();
    let gipsy_cfg = GipsyConfig {
        pool_pages: cfg.pool_pages,
        shared_cache: cfg.shared_cache,
        ..GipsyConfig::default()
    };
    let mut stats = GipsyStats::default();
    let t = Instant::now();
    let pairs = gipsy_join(
        &sparse_disk,
        &sparse_file,
        &dense_disk,
        &dense_idx,
        &gipsy_cfg,
        &mut stats,
    );
    m.join_wall = t.elapsed();
    let io = merged(&sparse_disk, &dense_disk);
    m.join_sim_io = io.sim_io_time();
    m.pages_read = io.reads();
    m.rand_reads = io.rand_reads;
    m.seq_reads = io.seq_reads;
    m.tests = stats.mem.element_tests;
    m.results = pairs.len() as u64;
    let oriented: Vec<ResultPair> = if a_is_sparse {
        pairs
    } else {
        pairs.into_iter().map(|(s, d)| (d, s)).collect()
    };
    (m.clone(), oriented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec};
    use tfm_memjoin::canonicalize;

    #[test]
    fn all_approaches_agree_on_results() {
        let a = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(1500, 200)
        });
        let b = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(4000, 201)
        });
        let cfg = RunConfig::default();
        let approaches = [
            Approach::transformers(),
            Approach::no_tr(),
            Approach::Pbsm,
            Approach::Rtree,
            Approach::Gipsy,
            Approach::Sssj,
            Approach::S3,
        ];
        let mut reference: Option<Vec<ResultPair>> = None;
        for ap in &approaches {
            let (metrics, pairs) = run_approach(ap, "t", &a, &b, &cfg);
            let pairs = canonicalize(pairs);
            assert_eq!(metrics.results as usize, pairs.len(), "{}", ap.label());
            match &reference {
                None => reference = Some(pairs),
                Some(r) => assert_eq!(&pairs, r, "approach {} diverges", ap.label()),
            }
        }
        assert!(!reference.unwrap().is_empty());
    }

    #[test]
    fn build_threads_change_nothing_but_wall_time() {
        let a = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(1200, 204)
        });
        let b = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(1200, 205)
        });
        for ap in [Approach::transformers(), Approach::Rtree, Approach::Gipsy] {
            let (m1, p1) = run_approach(&ap, "t", &a, &b, &RunConfig::default());
            let cfg4 = RunConfig {
                build_threads: 4,
                ..RunConfig::default()
            };
            let (m4, p4) = run_approach(&ap, "t", &a, &b, &cfg4);
            assert_eq!(canonicalize(p1), canonicalize(p4), "{}", ap.label());
            // The build is deterministic, so every join-phase metric (and
            // the simulated build I/O) must match exactly.
            assert_eq!(m1.index_sim_io, m4.index_sim_io, "{}", ap.label());
            assert_eq!(m1.pages_read, m4.pages_read, "{}", ap.label());
            assert_eq!(m1.tests, m4.tests, "{}", ap.label());
            assert_eq!(m4.build_threads, 4);
        }
    }

    #[test]
    fn skew_feedback_loop_records_and_reuses() {
        let a = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(1500, 206)
        });
        let b = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(1500, 207)
        });
        let cfg = RunConfig::default();
        let path =
            std::env::temp_dir().join(format!("tfm_runner_skew_{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        let ap = Approach::parallel(2);
        // First run: no recorded signal yet; afterwards one is stored.
        let mut store = crate::SkewStore::load(&path);
        assert_eq!(store.recorded("wl"), None);
        let (_, p1) = run_approach_with_skew(&ap, "wl", &a, &b, &cfg, &mut store);
        let recorded = store.recorded("wl").expect("first run must record skew");
        assert!((0.0..=1.0).contains(&recorded));
        store.save().unwrap();
        // Second run: the persisted signal is injected automatically and
        // cannot change the result set.
        let mut store = crate::SkewStore::load(&path);
        assert_eq!(store.recorded("wl"), Some(recorded));
        let (_, p2) = run_approach_with_skew(&ap, "wl", &a, &b, &cfg, &mut store);
        assert_eq!(canonicalize(p1), canonicalize(p2));
        // Non-parallel approaches pass through untouched.
        let before = store.clone();
        let _ = run_approach_with_skew(&Approach::Pbsm, "wl2", &a, &b, &cfg, &mut store);
        assert_eq!(store, before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_phases_are_populated() {
        let a = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(2000, 202)
        });
        let b = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(2000, 203)
        });
        let (m, _) = run_approach(
            &Approach::transformers(),
            "t",
            &a,
            &b,
            &RunConfig::default(),
        );
        assert!(m.index_sim_io > Duration::ZERO);
        assert!(m.join_sim_io > Duration::ZERO);
        assert!(m.pages_read > 0);
        assert!(m.join_time() >= m.join_sim_io);
    }
}
