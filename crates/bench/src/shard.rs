//! Harness for the sharded scatter-gather serve cluster (`tfm-serve`'s
//! shard module): partitions a dataset, builds one index per shard, and
//! replays a trace through the router — the cluster-side counterpart of
//! [`crate::run_serve`].

use std::time::Duration;
use tfm_geom::{ElementId, SpatialElement, SpatialQuery};
use tfm_serve::{
    serve_sharded, ShardEngineKind, ShardServeConfig, ShardSpec, ShardedCluster, ShardedServeStats,
};

use crate::serve::ServeEngineKind;

impl ServeEngineKind {
    /// The shard-cluster engine equivalent of this serve engine.
    pub fn shard_engine(&self) -> ShardEngineKind {
        match self {
            ServeEngineKind::Transformers => ShardEngineKind::Transformers,
            ServeEngineKind::Gipsy => ShardEngineKind::Gipsy,
            ServeEngineKind::Rtree => ShardEngineKind::Rtree,
        }
    }
}

/// Comparable measurements of one sharded serve run.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Workload label.
    pub workload: String,
    /// Engine label.
    pub engine: String,
    /// Indexed elements (summed over shards).
    pub n_elements: usize,
    /// Queries replayed.
    pub queries: u64,
    /// Shards in the cluster.
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Wall-clock serve time.
    pub wall: Duration,
    /// Queries per wall-clock second.
    pub qps: f64,
    /// Median per-query critical-path latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Median per-query critical-path queue wait.
    pub queue_wait_p50: Duration,
    /// 99th-percentile queue wait.
    pub queue_wait_p99: Duration,
    /// Mean shards routed per query.
    pub fanout_mean: f64,
    /// Largest per-query fanout.
    pub fanout_max: usize,
    /// Query partials routed (Σ fanout).
    pub routed_partials: u64,
    /// Query partials lost to load shedding.
    pub shed_partials: u64,
    /// Peak fraction of shard queues simultaneously full.
    pub max_cluster_pressure: f64,
    /// Pages read, summed over all shard disks.
    pub pages_read: u64,
    /// Cache hits, summed over all shard caches.
    pub pool_hits: u64,
    /// Cache misses, summed over all shard caches.
    pub pool_misses: u64,
    /// Result ids returned, summed over the trace.
    pub result_ids: u64,
}

impl ShardMetrics {
    fn from_stats(kind: ServeEngineKind, workload: &str, stats: &ShardedServeStats) -> Self {
        Self {
            workload: workload.to_string(),
            engine: kind.label().to_string(),
            n_elements: stats.per_shard.iter().map(|s| s.elements as usize).sum(),
            queries: stats.queries,
            shards: stats.shards,
            workers_per_shard: stats.workers_per_shard,
            wall: stats.wall,
            qps: stats.throughput_qps(),
            p50: stats.latency.p50(),
            p95: stats.latency.p95(),
            p99: stats.latency.p99(),
            queue_wait_p50: stats.queue_wait.p50(),
            queue_wait_p99: stats.queue_wait.p99(),
            fanout_mean: stats.fanout_mean,
            fanout_max: stats.fanout_max,
            routed_partials: stats.routed_partials,
            shed_partials: stats.shed_partials,
            max_cluster_pressure: stats.max_cluster_pressure,
            pages_read: stats.io_merged().reads(),
            pool_hits: stats.per_shard.iter().map(|s| s.pool_hits).sum(),
            pool_misses: stats.per_shard.iter().map(|s| s.pool_misses).sum(),
            result_ids: stats.result_ids,
        }
    }
}

/// Partitions `elements` per `spec` (the engine field is overridden from
/// `kind`), builds one index per shard on its own in-memory disk, replays
/// `trace` through the router, and returns metrics plus every query's
/// result ids (ascending — byte-identical to [`crate::run_serve`]'s
/// results when `serve_cfg.shed` is off).
pub fn run_serve_sharded(
    kind: ServeEngineKind,
    workload: &str,
    elements: &[SpatialElement],
    trace: &[SpatialQuery],
    spec: &ShardSpec,
    serve_cfg: &ShardServeConfig,
) -> (ShardMetrics, Vec<Vec<ElementId>>) {
    let spec = spec.clone().with_engine(kind.shard_engine());
    let cluster = ShardedCluster::build(elements.to_vec(), &spec);
    let out = serve_sharded(&cluster, trace, serve_cfg);
    (
        ShardMetrics::from_stats(kind, workload, &out.stats),
        out.results,
    )
}

/// Prints shard-sweep rows as an aligned table.
pub fn print_shard_table(rows: &[ShardMetrics]) {
    println!(
        "{:<14} {:<12} {:>6} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9}",
        "workload",
        "engine",
        "shards",
        "workers",
        "qps",
        "p50_us",
        "p95_us",
        "fanout",
        "shed",
        "pages"
    );
    for m in rows {
        println!(
            "{:<14} {:<12} {:>6} {:>7} {:>9.0} {:>9.1} {:>9.1} {:>7.2} {:>7} {:>9}",
            m.workload,
            m.engine,
            m.shards,
            m.workers_per_shard,
            m.qps,
            m.p50.as_secs_f64() * 1e6,
            m.p95.as_secs_f64() * 1e6,
            m.fanout_mean,
            m.shed_partials,
            m.pages_read
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;
    use tfm_datagen::{generate, generate_trace, DatasetSpec, QueryTraceSpec};

    #[test]
    fn sharded_runner_matches_unsharded_runner() {
        let elements = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(1500, 71)
        });
        let trace = generate_trace(&QueryTraceSpec::uniform(120, 72));
        let (_, unsharded) = crate::run_serve(
            ServeEngineKind::Transformers,
            "shard-bench",
            &elements,
            &trace,
            &RunConfig::default(),
            &tfm_serve::ServeConfig::default(),
        );
        for shards in [1usize, 3] {
            let (m, results) = run_serve_sharded(
                ServeEngineKind::Transformers,
                "shard-bench",
                &elements,
                &trace,
                &ShardSpec::default().with_shards(shards),
                &ShardServeConfig::default(),
            );
            assert_eq!(results, unsharded, "shards={shards}");
            assert_eq!(m.shards, shards);
            assert_eq!(m.queries, 120);
            assert_eq!(m.shed_partials, 0);
        }
    }
}
