//! Cold-cache byte-identity of the real file backend.
//!
//! Every run here builds its indexes fresh (cold caches, cold pools) on
//! either the in-memory [`StoreBackend::Mem`] or the on-disk
//! [`StoreBackend::File`] page store and must return exactly the same
//! results: the backend decides where page bytes live, never what a
//! query or join computes. The sweeps cover all three serve engines and
//! join approaches at 1/2/4/8 workers, sharded and unsharded, with the
//! prefetch pipeline (dedicated I/O threads + Hilbert-driven readahead)
//! active wherever the engine supports it.

use tfm_bench::{run_approach, run_serve, run_serve_sharded, Approach, RunConfig, ServeEngineKind};
use tfm_datagen::{generate, generate_trace, DatasetSpec, Distribution, QueryTraceSpec};
use tfm_memjoin::canonicalize;
use tfm_serve::{ServeConfig, ShardServeConfig, ShardSpec};
use tfm_storage::StoreBackend;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Per-test page-image directory (tests in this binary run in parallel
/// threads of one process, so the pid alone is not unique enough).
fn image_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tfm_io_eq_{tag}_{}", std::process::id()))
}

fn file_cfg(dir: &std::path::Path) -> RunConfig {
    RunConfig {
        backend: StoreBackend::File(dir.to_path_buf()),
        ..RunConfig::default()
    }
}

#[test]
fn serve_results_match_mem_across_engines_and_workers() {
    let dataset = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(4_000, 101)
    });
    let trace = generate_trace(&QueryTraceSpec::uniform(400, 102));
    let dir = image_dir("serve");

    for kind in ServeEngineKind::all() {
        let (_, reference) = run_serve(
            kind,
            "io-eq",
            &dataset,
            &trace,
            &RunConfig::default(),
            &ServeConfig::default(),
        );
        for &threads in &WORKER_SWEEP {
            // The R-tree engine has no page-schedule hook: it serves the
            // file image demand-paged (readahead 0); the other engines
            // run the full prefetch pipeline.
            let readahead = if matches!(kind, ServeEngineKind::Rtree) {
                0
            } else {
                64
            };
            let serve_cfg = ServeConfig::default()
                .with_threads(threads)
                .with_batch(32)
                .with_io_depth(2)
                .with_readahead(readahead);
            let (_, results) =
                run_serve(kind, "io-eq", &dataset, &trace, &file_cfg(&dir), &serve_cfg);
            assert_eq!(
                results, reference,
                "{kind:?}: file backend diverged at {threads} workers"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_serve_results_match_mem_across_engines_and_workers() {
    let dataset = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(4_000, 103)
    });
    let trace = generate_trace(&QueryTraceSpec::uniform(300, 104));
    let dir = image_dir("shard");

    for kind in ServeEngineKind::all() {
        let mem_spec = ShardSpec {
            shards: 3,
            ..ShardSpec::default()
        };
        let (_, reference) = run_serve_sharded(
            kind,
            "io-eq",
            &dataset,
            &trace,
            &mem_spec,
            &ShardServeConfig::default(),
        );
        let file_spec = ShardSpec {
            shards: 3,
            backend: StoreBackend::File(dir.join(format!("{kind:?}"))),
            ..ShardSpec::default()
        };
        for &workers in &WORKER_SWEEP {
            let cfg = ShardServeConfig {
                workers_per_shard: workers,
                batch: 32,
                io_depth: 2,
                readahead: if matches!(kind, ServeEngineKind::Rtree) {
                    0
                } else {
                    32
                },
                ..ShardServeConfig::default()
            };
            let (_, results) = run_serve_sharded(kind, "io-eq", &dataset, &trace, &file_spec, &cfg);
            assert_eq!(
                results, reference,
                "{kind:?}: sharded file backend diverged at {workers} workers/shard"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn join_results_match_mem_across_approaches_and_workers() {
    let a = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::with_distribution(
            2_500,
            Distribution::MassiveCluster {
                clusters: 4,
                elements_per_cluster: 625,
            },
            105,
        )
    });
    let b = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(2_500, 106)
    });
    let dir = image_dir("join");
    let mem_cfg = RunConfig::default();

    // Each approach against its own mem run: backends must agree even
    // where approaches legitimately differ in their result ordering.
    for approach in [Approach::transformers(), Approach::Rtree, Approach::Gipsy] {
        let (_, mem_pairs) = run_approach(&approach, "io-eq", &a, &b, &mem_cfg);
        let (_, file_pairs) = run_approach(&approach, "io-eq", &a, &b, &file_cfg(&dir));
        assert_eq!(
            canonicalize(file_pairs),
            canonicalize(mem_pairs),
            "{approach:?}: file backend changed the join result"
        );
    }

    // The parallel TRANSFORMERS join sweeps the worker counts on the
    // file backend against the sequential mem reference.
    let (_, reference) = run_approach(&Approach::transformers(), "io-eq", &a, &b, &mem_cfg);
    let reference = canonicalize(reference);
    for &threads in &WORKER_SWEEP {
        let approach = Approach::TransformersParallel(transformers::JoinConfig::default(), threads);
        let (_, pairs) = run_approach(&approach, "io-eq", &a, &b, &file_cfg(&dir));
        assert_eq!(
            canonicalize(pairs),
            reference,
            "parallel x{threads}: file backend changed the join result"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn join_prefetch_matches_mem_across_workers_and_policies() {
    // The join prefetch pipeline (chunk-schedule readahead through
    // dedicated I/O threads) and the 2Q admission policy only warm the
    // cache and reorder evictions: file-backed prefetching joins must be
    // byte-identical to the sequential mem reference at every worker
    // count, and the pipeline must actually run (issued pages > 0) at
    // multi-worker counts where chunks exist to schedule.
    let a = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(3_000, 107)
    });
    let b = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(3_000, 108)
    });
    let dir = image_dir("join_prefetch");

    let (_, reference) = run_approach(
        &Approach::transformers(),
        "io-eq",
        &a,
        &b,
        &RunConfig::default(),
    );
    let reference = canonicalize(reference);
    for policy in [
        tfm_storage::CachePolicy::Clock,
        tfm_storage::CachePolicy::TwoQ,
    ] {
        let mut total_issued = 0;
        for &threads in &WORKER_SWEEP {
            let join_cfg = transformers::JoinConfig::default()
                .with_cache_policy(policy)
                .with_io_depth(2)
                .with_readahead(128);
            let approach = Approach::TransformersParallel(join_cfg, threads);
            let (m, pairs) = run_approach(&approach, "io-eq", &a, &b, &file_cfg(&dir));
            assert_eq!(
                canonicalize(pairs),
                reference,
                "prefetch x{threads} ({policy}): file backend changed the join result"
            );
            assert_eq!(
                m.prefetch_issued,
                m.prefetch_hits + m.prefetch_unused,
                "prefetch x{threads} ({policy}): accounting must partition issued pages"
            );
            total_issued += m.prefetch_issued;
        }
        // Per-run issue counts are timing-dependent (demand reads can win
        // the race to every page on a loaded host), but a whole sweep
        // where the pipeline never lands a single page means it is wired
        // up wrong.
        assert!(
            total_issued > 0,
            "({policy}): pipeline never issued a page across the worker sweep"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
