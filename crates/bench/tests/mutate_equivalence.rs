//! Concurrent read/write equivalence — the write path's acceptance bar.
//!
//! After every applied mutation batch, serve results over the mutable
//! overlay must be **byte-identical** to a TRANSFORMERS index rebuilt
//! from scratch on the mutated dataset, at 1, 2, 4 and 8 serve workers.
//! The mutations go through a real segmented WAL (group commit, ordered
//! data flush), so the whole logged write path sits under the equality.

use std::collections::BTreeMap;
use tfm_datagen::{
    generate, generate_mixed_trace, generate_trace, DatasetSpec, MixedOp, MixedTraceSpec,
    QueryTraceSpec,
};
use tfm_geom::SpatialElement;
use tfm_serve::{serve_trace, MutableTransformersEngine, ServeConfig, TransformersEngine};
use tfm_storage::{Disk, SharedPageCache};
use tfm_wal::{Wal, WalOptions};
use transformers::{IndexConfig, MutableTransformers, MutationOp, TransformersIndex};

#[test]
fn mutated_overlay_matches_rebuilt_index_at_every_worker_count() {
    let wal_dir = std::env::temp_dir().join(format!("tfm_mutate_equiv_{}", std::process::id()));
    std::fs::remove_dir_all(&wal_dir).ok();

    let elems = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(3000, 90)
    });
    let disk = Disk::in_memory(2048);
    let idx = TransformersIndex::build(&disk, elems.clone(), &IndexConfig::default());
    let overlay = MutableTransformers::adopt(&idx, &disk);
    let cache = SharedPageCache::new(&disk, 8192);
    let wal = Wal::open(&wal_dir, WalOptions::default()).expect("open wal");

    let live_ids: Vec<u64> = elems.iter().map(|e| e.id).collect();
    let trace = generate_mixed_trace(
        &MixedTraceSpec {
            insert_permille: 600,
            ..MixedTraceSpec::uniform(600, 1000, 91)
        },
        &live_ids,
    );
    let probes = generate_trace(&QueryTraceSpec::uniform(200, 92));
    let mut live: BTreeMap<u64, SpatialElement> = elems.into_iter().map(|e| (e.id, e)).collect();

    let engine = MutableTransformersEngine::new(&overlay, &cache);
    for (round, chunk) in trace.chunks(150).enumerate() {
        let writes: Vec<MutationOp> = chunk
            .iter()
            .map(|op| match op {
                MixedOp::Insert(e) => {
                    live.insert(e.id, *e);
                    MutationOp::Insert(*e)
                }
                MixedOp::Delete(id) => {
                    live.remove(id);
                    MutationOp::Delete(*id)
                }
                MixedOp::Query(_) => unreachable!("writes-only trace"),
            })
            .collect();
        let out = overlay.apply_batch(&wal, &cache, &writes);
        assert_eq!(out.rejected_inserts, 0);
        assert_eq!(out.missing_deletes, 0);
        assert_eq!(overlay.len(), live.len() as u64);

        // Rebuild from scratch on the mutated dataset and hold every
        // worker count to byte-identical results.
        let rebuilt_disk = Disk::in_memory(2048);
        let mutated: Vec<SpatialElement> = live.values().copied().collect();
        let rebuilt = TransformersIndex::build(&rebuilt_disk, mutated, &IndexConfig::default());
        let rebuilt_engine = TransformersEngine::new(&rebuilt, &rebuilt_disk);
        let expected = serve_trace(&rebuilt_engine, &probes, &ServeConfig::default());
        for threads in [1, 2, 4, 8] {
            let cfg = ServeConfig::default().with_threads(threads).with_batch(32);
            let got = serve_trace(&engine, &probes, &cfg);
            assert_eq!(
                got.results, expected.results,
                "round {round}, threads {threads}"
            );
        }
    }

    // The WAL really carried the batches: one commit per round, durable.
    let stats = wal.stats();
    assert_eq!(stats.commits, trace.chunks(150).len() as u64);
    assert!(stats.fsyncs > 0);

    std::fs::remove_dir_all(&wal_dir).ok();
}
