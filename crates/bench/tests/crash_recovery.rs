//! Crash-injection recovery harness: kill the writer mid-commit at
//! randomized byte positions, recover, and verify the restored image.
//!
//! Each kill point spawns the `crash_child` binary with an armed
//! byte-clock crash hook (`Wal::set_crash_after_bytes`): the WAL append
//! that would cross the chosen byte writes a partial frame, syncs, and
//! aborts the process — a torn write at an adversarial position. The
//! parent then:
//!
//! 1. replays the log against the surviving data image
//!    ([`tfm_wal::recover`] — committed transactions' page after-images
//!    rewritten, uncommitted ones skipped);
//! 2. reopens the mutable overlay from its sidecar head page;
//! 3. asserts the restored state equals a reference replay of **exactly
//!    the batches the child reported committed** — every committed batch
//!    present, nothing of the torn batch visible.
//!
//! The child only prints `committed k` after batch `k`'s commit record is
//! durable and its data pages are flushed, and the crash hook fires
//! *inside* a WAL append — so the printed set is precisely the committed
//! set, and the equality is exact, not a two-way tolerance.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;
use tfm_datagen::{generate, generate_mixed_trace, DatasetSpec, MixedOp, MixedTraceSpec};
use tfm_geom::{Aabb, Point3, SpatialElement, SpatialQuery};
use tfm_storage::Disk;
use transformers::MutableTransformers;

const COUNT: usize = 250;
const BATCH: usize = 40;
const OPS: usize = 320;
const SEED: u64 = 7;
const PAGE_SIZE: usize = 512;
/// Randomized kill points per run (the ISSUE's acceptance floor is 50).
const KILL_POINTS: u64 = 56;

struct ChildRun {
    committed: usize,
    meta_head: u64,
    total_bytes: Option<u64>,
    success: bool,
}

fn run_child(dir: &Path, crash_after: Option<u64>) -> ChildRun {
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).expect("create run dir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crash_child"));
    cmd.arg("--dir").arg(dir);
    for (name, v) in [
        ("--count", COUNT),
        ("--batch", BATCH),
        ("--ops", OPS),
        ("--seed", SEED as usize),
        ("--page-size", PAGE_SIZE),
    ] {
        cmd.arg(name).arg(v.to_string());
    }
    if let Some(b) = crash_after {
        cmd.arg("--crash-after").arg(b.to_string());
    }
    let out = cmd.output().expect("spawn crash_child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut committed = 0usize;
    let mut meta_head = None;
    let mut total_bytes = None;
    for line in stdout.lines() {
        if let Some(k) = line.strip_prefix("committed ") {
            committed = k.trim().parse::<usize>().expect("batch index") + 1;
        } else if let Some(p) = line.strip_prefix("meta_head ") {
            meta_head = Some(p.trim().parse().expect("page id"));
        } else if let Some(b) = line.strip_prefix("total_bytes ") {
            total_bytes = Some(b.trim().parse().expect("byte count"));
        }
    }
    ChildRun {
        committed,
        meta_head: meta_head.expect("child prints meta_head before mutating"),
        total_bytes,
        success: out.status.success(),
    }
}

/// The element set after replaying the first `batches` write batches of
/// the deterministic trace over the base dataset.
fn reference_after(batches: usize) -> BTreeMap<u64, SpatialElement> {
    let elems = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(COUNT, SEED)
    });
    let live_ids: Vec<u64> = elems.iter().map(|e| e.id).collect();
    let trace = generate_mixed_trace(&MixedTraceSpec::uniform(OPS, 1000, SEED), &live_ids);
    let mut live: BTreeMap<u64, SpatialElement> = elems.into_iter().map(|e| (e.id, e)).collect();
    for chunk in trace.chunks(BATCH).take(batches) {
        for op in chunk {
            match op {
                MixedOp::Insert(e) => {
                    live.insert(e.id, *e);
                }
                MixedOp::Delete(id) => {
                    live.remove(id);
                }
                MixedOp::Query(_) => unreachable!("writes-only trace"),
            }
        }
    }
    live
}

/// Deterministic probe set covering the universe at several scales.
fn probes() -> Vec<SpatialQuery> {
    let mut out = Vec::new();
    for (lo, hi) in [
        (0.0, 1000.0),
        (100.0, 420.0),
        (500.0, 900.0),
        (330.0, 340.0),
    ] {
        out.push(SpatialQuery::Window(Aabb::new(
            Point3::new(lo, lo, lo),
            Point3::new(hi, hi, hi),
        )));
    }
    out
}

/// Recovers the image in `dir` and asserts the reopened overlay equals
/// the reference state after exactly `batches` committed batches.
fn verify_recovered(dir: &Path, meta_head: u64, batches: usize, kill_byte: Option<u64>) {
    let disk =
        Disk::open_file_checksummed(dir.join("crash.pages"), PAGE_SIZE).expect("reopen data image");
    tfm_wal::recover(&dir.join("wal"), &disk).expect("recovery must succeed");
    let overlay = MutableTransformers::reopen(&disk, tfm_storage::PageId(meta_head));
    let reference = reference_after(batches);
    let ctx = format!("kill at byte {kill_byte:?}, {batches} committed batches");
    assert_eq!(overlay.len(), reference.len() as u64, "{ctx}: length");
    let snapshot = overlay.snapshot();
    let mut reader = &disk;
    for (qi, q) in probes().iter().enumerate() {
        let got = snapshot.query(&mut reader, q);
        let mut expected: Vec<u64> = reference
            .values()
            .filter(|e| q.matches(&e.mbb))
            .map(|e| e.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected, "{ctx}: probe {qi}");
    }
}

/// Multiplicative-hash PRNG — deterministic kill points without a rand
/// dependency, spread over the whole log.
fn scatter(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ i
}

#[test]
fn randomized_kill_points_recover_to_the_committed_prefix() {
    let base = std::env::temp_dir().join(format!("tfm_crash_recovery_{}", std::process::id()));

    // Clean run first: learns the full log size (kill-point range) and
    // proves the no-crash path replays every batch.
    let clean = run_child(&base, None);
    assert!(clean.success, "clean run must exit 0");
    let total_batches = OPS.div_ceil(BATCH);
    assert_eq!(clean.committed, total_batches);
    let total_bytes = clean.total_bytes.expect("clean run prints total_bytes");
    assert!(total_bytes > 0);
    // A clean image recovers to itself (recovery is idempotent over a
    // fully-flushed log).
    verify_recovered(&base, clean.meta_head, total_batches, None);

    let mut min_committed = usize::MAX;
    let mut max_committed = 0usize;
    for i in 0..KILL_POINTS {
        // Kill points spread over [1, total_bytes): every region of the
        // log gets hit — first batch, mid-log, segment tails.
        let kill = 1 + scatter(i) % (total_bytes - 1);
        let run = run_child(&base, Some(kill));
        assert!(
            !run.success,
            "kill at byte {kill} must abort the child (log is {total_bytes} bytes)"
        );
        assert!(
            run.committed < total_batches,
            "kill at byte {kill} cannot have committed everything"
        );
        min_committed = min_committed.min(run.committed);
        max_committed = max_committed.max(run.committed);
        verify_recovered(&base, run.meta_head, run.committed, Some(kill));
    }
    // The kill points actually exercised different crash epochs: some
    // before the first commit, some deep into the replay.
    assert_eq!(min_committed, 0, "no kill landed inside the first batch");
    assert!(
        max_committed + 1 == total_batches,
        "no kill landed inside the final batch (max committed {max_committed})"
    );

    std::fs::remove_dir_all(&base).ok();
}
