//! Criterion bench for Fig. 13 (right): OverFit vs cost-model vs UnderFit
//! transformation thresholds across data distributions.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use transformers::{JoinConfig, ThresholdPolicy};

fn bench(c: &mut Criterion) {
    let workloads = [
        (
            "massivecluster",
            dataset(
                15_000,
                Distribution::MassiveCluster {
                    clusters: 5,
                    elements_per_cluster: 1_500,
                },
                50,
            ),
            dataset(15_000, Distribution::Uniform, 51),
        ),
        (
            "uniform",
            dataset(15_000, Distribution::Uniform, 52),
            dataset(15_000, Distribution::Uniform, 53),
        ),
    ];
    for (name, a, b) in workloads {
        let tr = TrFixture::new(a, b);
        let mut group = c.benchmark_group(format!("fig13/threshold_{name}"));
        group.sample_size(10);
        for (label, policy) in [
            ("overfit", ThresholdPolicy::over_fit()),
            ("costmodel", ThresholdPolicy::CostModel),
            ("underfit", ThresholdPolicy::under_fit()),
        ] {
            let cfg = JoinConfig::default().with_thresholds(policy);
            group.bench_function(label, |bench| bench.iter(|| black_box(tr.join(&cfg))));
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
