//! Criterion bench for Fig. 1 / Fig. 10: join-phase time of all four
//! approaches at three density-ratio points (sparse×dense, balanced,
//! dense×sparse).

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use transformers::JoinConfig;

fn bench(c: &mut Criterion) {
    let points = [
        ("ratio_100x", 300usize, 30_000usize),
        ("ratio_1x", 10_000, 10_000),
        ("ratio_0.01x", 30_000, 300),
    ];
    for (name, na, nb) in points {
        let a = dataset(na, Distribution::Uniform, 1);
        let b = dataset(nb, Distribution::Uniform, 2);

        let mut group = c.benchmark_group(format!("fig10/{name}"));
        group.sample_size(10);

        let tr = TrFixture::new(a.clone(), b.clone());
        group.bench_function("transformers", |bench| {
            bench.iter(|| black_box(tr.join(&JoinConfig::default())))
        });

        let pbsm = PbsmFixture::new(&a, &b);
        group.bench_function("pbsm", |bench| bench.iter(|| black_box(pbsm.join())));

        let rtree = RtreeFixture::new(a.clone(), b.clone());
        group.bench_function("rtree", |bench| bench.iter(|| black_box(rtree.join())));

        let (sparse, dense) = if na <= nb {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        let gipsy = GipsyFixture::new(sparse, dense);
        group.bench_function("gipsy", |bench| bench.iter(|| black_box(gipsy.join())));

        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
