//! Scaling bench for the query-serving subsystem (`tfm-serve`):
//! trace-replay throughput at 1/2/4/8 workers, Hilbert-batched vs
//! arrival-order, on a pre-built TRANSFORMERS index (plus the GIPSY and
//! R-tree engines at a fixed worker count for cross-structure
//! comparison).
//!
//! Two axes of interest:
//!
//! * **worker scaling** — batches are independent, so throughput should
//!   grow with workers until the shared disk's atomics saturate;
//! * **batching mode** — Hilbert-ordered batches convert random page
//!   accesses into buffer hits and sequential reads (see `DESIGN.md`),
//!   so `batched` should beat `unbatched` wherever simulated I/O
//!   dominates, and the `IoStats` split in `ServeStats` shows why.
//!
//! Note: on a single-CPU machine the worker curves are flat — the bench
//! then measures queue + session overhead, which should stay within a few
//! percent of the 1-worker inline path.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::{generate_trace, Distribution, ProbeMix, QueryTraceSpec};
use tfm_serve::{serve_trace, GipsyEngine, RtreeEngine, ServeConfig, TransformersEngine};

fn bench(c: &mut Criterion) {
    let n = 20_000;
    let queries = 2_000;

    let fixture = TrFixture::new(
        dataset(n, Distribution::Uniform, 60),
        dataset(n, Distribution::Uniform, 61),
    );
    let engine = TransformersEngine::new(&fixture.idx_a, &fixture.disk_a);
    let trace = generate_trace(&QueryTraceSpec {
        max_window_side: 10.0,
        ..QueryTraceSpec::uniform(queries, 62)
    });
    let clustered_trace = generate_trace(&QueryTraceSpec {
        max_window_side: 10.0,
        ..QueryTraceSpec::with_mix(queries, ProbeMix::Clustered { clusters: 8 }, 63)
    });

    let mut group = c.benchmark_group(format!("serve/transformers_{n}x{queries}"));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        for (mode, hilbert) in [("batched", true), ("unbatched", false)] {
            let cfg = ServeConfig {
                threads: workers,
                hilbert_batching: hilbert,
                batch: 128,
                ..ServeConfig::default()
            };
            group.bench_function(format!("workers_{workers}_{mode}"), |bench| {
                bench.iter(|| black_box(serve_trace(&engine, &trace, &cfg).stats.queries))
            });
        }
    }
    // Clustered probes: the locality case batching exists for.
    let cfg = ServeConfig {
        threads: 4,
        batch: 128,
        ..ServeConfig::default()
    };
    group.bench_function("workers_4_clustered_batched", |bench| {
        bench.iter(|| black_box(serve_trace(&engine, &clustered_trace, &cfg).stats.queries))
    });
    group.finish();

    // Cross-structure comparison at a fixed worker count.
    let gipsy = GipsyEngine::new(&fixture.idx_a, &fixture.disk_a);
    let rtree_fixture = RtreeFixture::new(
        dataset(n, Distribution::Uniform, 60),
        dataset(1, Distribution::Uniform, 64),
    );
    let rtree = RtreeEngine::new(&rtree_fixture.tree_a, &rtree_fixture.disk_a);
    let mut group = c.benchmark_group(format!("serve/engines_{n}x{queries}"));
    group.sample_size(10);
    let cfg = ServeConfig {
        threads: 4,
        batch: 128,
        ..ServeConfig::default()
    };
    group.bench_function("gipsy_workers_4", |bench| {
        bench.iter(|| black_box(serve_trace(&gipsy, &trace, &cfg).stats.queries))
    });
    group.bench_function("rtree_workers_4", |bench| {
        bench.iter(|| black_box(serve_trace(&rtree, &trace, &cfg).stats.queries))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
