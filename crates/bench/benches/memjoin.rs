//! Ablation bench: the in-memory join kernels (grid hash join vs plane
//! sweep vs nested loop). PBSM and TRANSFORMERS use the grid hash join,
//! the R-Tree baseline uses plane sweep (paper §VII-A).

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use tfm_memjoin::{grid_hash_join, nested_loop_join, plane_sweep_join, GridConfig, JoinStats};

fn bench(c: &mut Criterion) {
    let a = dataset(3_000, Distribution::Uniform, 80);
    let b = dataset(3_000, Distribution::Uniform, 81);

    let mut group = c.benchmark_group("memjoin/3000x3000");
    group.sample_size(20);

    group.bench_function("grid_hash", |bench| {
        bench.iter(|| {
            let mut s = JoinStats::default();
            black_box(grid_hash_join(&a, &b, &GridConfig::default(), &mut s).len())
        })
    });

    group.bench_function("plane_sweep", |bench| {
        bench.iter(|| {
            let mut s = JoinStats::default();
            black_box(plane_sweep_join(&a, &b, &mut s).len())
        })
    });

    group.bench_function("nested_loop", |bench| {
        bench.iter(|| {
            let mut s = JoinStats::default();
            black_box(nested_loop_join(&a, &b, &mut s).len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
