//! Ablation bench: Hilbert-B+-tree walk starts vs the paper's stated
//! alternative ("the first space node of the follower dataset can be
//! used"), plus the node-level prefilter on/off.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use transformers::JoinConfig;

fn bench(c: &mut Criterion) {
    let a = dataset(20_000, Distribution::DenseCluster { clusters: 30 }, 90);
    let b = dataset(20_000, Distribution::Uniform, 91);
    let tr = TrFixture::new(a, b);

    let mut group = c.benchmark_group("ablation/walk_start");
    group.sample_size(10);
    group.bench_function("hilbert_btree", |bench| {
        bench.iter(|| {
            black_box(tr.join(&JoinConfig {
                hilbert_walk_start: true,
                ..JoinConfig::default()
            }))
        })
    });
    group.bench_function("first_node", |bench| {
        bench.iter(|| {
            black_box(tr.join(&JoinConfig {
                hilbert_walk_start: false,
                ..JoinConfig::default()
            }))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("ablation/node_prefilter");
    group.sample_size(10);
    group.bench_function("prefilter_on", |bench| {
        bench.iter(|| {
            black_box(tr.join(&JoinConfig {
                node_prefilter: true,
                ..JoinConfig::default()
            }))
        })
    });
    group.bench_function("prefilter_off", |bench| {
        bench.iter(|| {
            black_box(tr.join(&JoinConfig {
                node_prefilter: false,
                ..JoinConfig::default()
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
