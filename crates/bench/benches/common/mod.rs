#![allow(dead_code)] // each bench target uses a subset of these fixtures

//! Shared fixtures for the Criterion benches.
//!
//! Benches measure the *join phase* wall time on pre-built indexes/
//! partitions (the paper reports join time excluding index building).
//! Sizes are deliberately small so `cargo bench --workspace` completes in
//! minutes; the full-scale figure reproductions are the `src/bin/*`
//! binaries.

use tfm_datagen::{generate, DatasetSpec, Distribution};
use tfm_geom::{Aabb, SpatialElement};
use tfm_storage::{BufferPool, Disk};
use transformers::{transformers_join, IndexConfig, JoinConfig, TransformersIndex};

/// Page size used by all bench fixtures (matches the experiment binaries).
pub const PAGE: usize = 2048;

/// Elements with the harness's default box size.
pub fn dataset(count: usize, distribution: Distribution, seed: u64) -> Vec<SpatialElement> {
    generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::with_distribution(count, distribution, seed)
    })
}

/// A ready-to-join TRANSFORMERS fixture.
pub struct TrFixture {
    pub disk_a: Disk,
    pub disk_b: Disk,
    pub idx_a: TransformersIndex,
    pub idx_b: TransformersIndex,
}

impl TrFixture {
    pub fn new(a: Vec<SpatialElement>, b: Vec<SpatialElement>) -> Self {
        let disk_a = Disk::in_memory(PAGE);
        let disk_b = Disk::in_memory(PAGE);
        let idx_a = TransformersIndex::build(&disk_a, a, &IndexConfig::default());
        let idx_b = TransformersIndex::build(&disk_b, b, &IndexConfig::default());
        Self {
            disk_a,
            disk_b,
            idx_a,
            idx_b,
        }
    }

    pub fn join(&self, cfg: &JoinConfig) -> usize {
        transformers_join(&self.idx_a, &self.disk_a, &self.idx_b, &self.disk_b, cfg)
            .pairs
            .len()
    }
}

/// A ready-to-join PBSM fixture.
pub struct PbsmFixture {
    pub disk_a: Disk,
    pub disk_b: Disk,
    pub part_a: tfm_pbsm::PbsmDataset,
    pub part_b: tfm_pbsm::PbsmDataset,
    pub config: tfm_pbsm::PbsmConfig,
}

impl PbsmFixture {
    pub fn new(a: &[SpatialElement], b: &[SpatialElement]) -> Self {
        let disk_a = Disk::in_memory(PAGE);
        let disk_b = Disk::in_memory(PAGE);
        let config = tfm_pbsm::PbsmConfig::default();
        let extent = Aabb::union_all(a.iter().chain(b.iter()).map(|e| e.mbb));
        let mut stats = tfm_pbsm::PbsmStats::default();
        let part_a = tfm_pbsm::pbsm_partition(&disk_a, a, extent, &config, &mut stats);
        let part_b = tfm_pbsm::pbsm_partition(&disk_b, b, extent, &config, &mut stats);
        Self {
            disk_a,
            disk_b,
            part_a,
            part_b,
            config,
        }
    }

    pub fn join(&self) -> usize {
        let mut stats = tfm_pbsm::PbsmStats::default();
        let mut pool_a = BufferPool::with_default_capacity(&self.disk_a);
        let mut pool_b = BufferPool::with_default_capacity(&self.disk_b);
        tfm_pbsm::pbsm_join(
            &mut pool_a,
            &self.part_a,
            &mut pool_b,
            &self.part_b,
            &self.config,
            &mut stats,
        )
        .len()
    }
}

/// A ready-to-join synchronized R-Tree fixture.
pub struct RtreeFixture {
    pub disk_a: Disk,
    pub disk_b: Disk,
    pub tree_a: tfm_rtree::RTree,
    pub tree_b: tfm_rtree::RTree,
}

impl RtreeFixture {
    pub fn new(a: Vec<SpatialElement>, b: Vec<SpatialElement>) -> Self {
        let disk_a = Disk::in_memory(PAGE);
        let disk_b = Disk::in_memory(PAGE);
        let tree_a = tfm_rtree::RTree::bulk_load(&disk_a, a);
        let tree_b = tfm_rtree::RTree::bulk_load(&disk_b, b);
        Self {
            disk_a,
            disk_b,
            tree_a,
            tree_b,
        }
    }

    pub fn join(&self) -> usize {
        let mut stats = tfm_rtree::RtreeStats::default();
        let mut pool_a = BufferPool::with_default_capacity(&self.disk_a);
        let mut pool_b = BufferPool::with_default_capacity(&self.disk_b);
        tfm_rtree::sync_join(
            &mut pool_a,
            &self.tree_a,
            &mut pool_b,
            &self.tree_b,
            &mut stats,
        )
        .len()
    }
}

/// A ready-to-join GIPSY fixture (first dataset is declared sparse).
pub struct GipsyFixture {
    pub sparse_disk: Disk,
    pub dense_disk: Disk,
    pub sparse: tfm_gipsy::SparseFile,
    pub dense: TransformersIndex,
}

impl GipsyFixture {
    pub fn new(sparse: Vec<SpatialElement>, dense: Vec<SpatialElement>) -> Self {
        let sparse_disk = Disk::in_memory(PAGE);
        let dense_disk = Disk::in_memory(PAGE);
        let sparse = tfm_gipsy::SparseFile::write(&sparse_disk, sparse);
        let dense = TransformersIndex::build(&dense_disk, dense, &IndexConfig::default());
        Self {
            sparse_disk,
            dense_disk,
            sparse,
            dense,
        }
    }

    pub fn join(&self) -> usize {
        let mut stats = tfm_gipsy::GipsyStats::default();
        tfm_gipsy::gipsy_join(
            &self.sparse_disk,
            &self.sparse,
            &self.dense_disk,
            &self.dense,
            &tfm_gipsy::GipsyConfig::default(),
            &mut stats,
        )
        .len()
    }
}
