//! Criterion bench: the related-work baselines (SSSJ, S3) against PBSM on
//! the uniform workload, plus the R-Tree packing ablation (STR vs Hilbert,
//! §VIII-A).

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use tfm_geom::Aabb;
use tfm_storage::{BufferPool, Disk};

fn bench(c: &mut Criterion) {
    let a = dataset(10_000, Distribution::Uniform, 100);
    let b = dataset(10_000, Distribution::Uniform, 101);
    let extent = Aabb::union_all(a.iter().chain(b.iter()).map(|e| e.mbb));

    let mut group = c.benchmark_group("extra/space_oriented");
    group.sample_size(10);

    let pbsm = PbsmFixture::new(&a, &b);
    group.bench_function("pbsm", |bench| bench.iter(|| black_box(pbsm.join())));

    // SSSJ fixture.
    let disk_a = Disk::in_memory(PAGE);
    let disk_b = Disk::in_memory(PAGE);
    let mut stats = tfm_sweep::sssj::SssjStats::default();
    let sa = tfm_sweep::sssj::sssj_partition(&disk_a, &a, extent, 100, &mut stats);
    let sb = tfm_sweep::sssj::sssj_partition(&disk_b, &b, extent, 100, &mut stats);
    group.bench_function("sssj", |bench| {
        bench.iter(|| {
            let mut stats = tfm_sweep::sssj::SssjStats::default();
            let mut pool_a = BufferPool::with_default_capacity(&disk_a);
            let mut pool_b = BufferPool::with_default_capacity(&disk_b);
            black_box(
                tfm_sweep::sssj::sssj_join(&mut pool_a, &sa, &mut pool_b, &sb, &mut stats).len(),
            )
        })
    });

    // S3 fixture.
    let disk_a3 = Disk::in_memory(PAGE);
    let disk_b3 = Disk::in_memory(PAGE);
    let mut stats3 = tfm_sweep::s3::S3Stats::default();
    let ta = tfm_sweep::s3::s3_partition(&disk_a3, &a, extent, 7, &mut stats3);
    let tb = tfm_sweep::s3::s3_partition(&disk_b3, &b, extent, 7, &mut stats3);
    group.bench_function("s3", |bench| {
        bench.iter(|| {
            let mut stats = tfm_sweep::s3::S3Stats::default();
            let mut pool_a = BufferPool::with_default_capacity(&disk_a3);
            let mut pool_b = BufferPool::with_default_capacity(&disk_b3);
            black_box(tfm_sweep::s3::s3_join(&mut pool_a, &ta, &mut pool_b, &tb, &mut stats).len())
        })
    });
    group.finish();

    // R-Tree packing ablation: STR vs Hilbert bulk load + sync join.
    let mut group = c.benchmark_group("ablation/rtree_packing");
    group.sample_size(10);
    for (label, hilbert) in [("str", false), ("hilbert", true)] {
        let disk_a = Disk::in_memory(PAGE);
        let disk_b = Disk::in_memory(PAGE);
        let (tree_a, tree_b) = if hilbert {
            (
                tfm_rtree::RTree::bulk_load_hilbert(&disk_a, a.clone()),
                tfm_rtree::RTree::bulk_load_hilbert(&disk_b, b.clone()),
            )
        } else {
            (
                tfm_rtree::RTree::bulk_load(&disk_a, a.clone()),
                tfm_rtree::RTree::bulk_load(&disk_b, b.clone()),
            )
        };
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut stats = tfm_rtree::RtreeStats::default();
                let mut pool_a = BufferPool::with_default_capacity(&disk_a);
                let mut pool_b = BufferPool::with_default_capacity(&disk_b);
                black_box(
                    tfm_rtree::sync_join(&mut pool_a, &tree_a, &mut pool_b, &tree_b, &mut stats)
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
