//! Scaling bench for the parallel execution subsystem (`tfm-exec`):
//! join-phase throughput at 1/2/4/8 workers on a uniform and a
//! non-uniform (clustered, cost-skewed) workload.
//!
//! The sequential `transformers_join` is included as the baseline so the
//! parallel path's single-worker overhead is visible, not just its
//! scaling.
//!
//! Note: on a single-CPU machine (e.g. a 1-core container) the curves are
//! flat — the bench then measures the parallel path's overhead, which
//! should stay within a few percent of sequential at every worker count.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use tfm_exec::parallel_join;
use transformers::JoinConfig;

fn bench_workload(c: &mut Criterion, label: &str, fixture: &TrFixture) {
    let mut group = c.benchmark_group(format!("parallel/{label}"));
    group.sample_size(10);

    group.bench_function("sequential", |bench| {
        bench.iter(|| black_box(fixture.join(&JoinConfig::default())))
    });

    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("workers_{workers}"), |bench| {
            bench.iter(|| {
                black_box(
                    parallel_join(
                        &fixture.idx_a,
                        &fixture.disk_a,
                        &fixture.idx_b,
                        &fixture.disk_b,
                        &JoinConfig::default(),
                        workers,
                    )
                    .pairs
                    .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let n = 20_000;

    let uniform = TrFixture::new(
        dataset(n, Distribution::Uniform, 30),
        dataset(n, Distribution::Uniform, 31),
    );
    bench_workload(c, &format!("uniform_{n}"), &uniform);

    // Non-uniform: massive clusters against a near-uniform background —
    // maximally skewed per-pivot cost, the case work stealing exists for.
    let nonuniform = TrFixture::new(
        dataset(
            n,
            Distribution::MassiveCluster {
                clusters: 5,
                elements_per_cluster: n / 5,
            },
            32,
        ),
        dataset(n, Distribution::UniformCluster { clusters: 100 }, 33),
    );
    bench_workload(c, &format!("nonuniform_{n}"), &nonuniform);
}

criterion_group!(benches, bench);
criterion_main!(benches);
