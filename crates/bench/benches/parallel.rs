//! Scaling bench for the parallel execution subsystem (`tfm-exec`):
//! join-phase throughput at 1/2/4/8 workers on a uniform and a
//! non-uniform (clustered, cost-skewed) workload.
//!
//! The sequential `transformers_join` is included as the baseline so the
//! parallel path's single-worker overhead is visible, not just its
//! scaling.
//!
//! Note: on a single-CPU machine (e.g. a 1-core container) the curves are
//! flat — the bench then measures the parallel path's overhead, which
//! should stay within a few percent of sequential at every worker count.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use tfm_exec::parallel_join;
use transformers::JoinConfig;

fn bench_workload(c: &mut Criterion, label: &str, fixture: &TrFixture) {
    let mut group = c.benchmark_group(format!("parallel/{label}"));
    group.sample_size(10);

    group.bench_function("sequential", |bench| {
        bench.iter(|| black_box(fixture.join(&JoinConfig::default())))
    });

    // Three configurations ablating one feature at a time:
    //   pruned   — role transformations + cross-worker pruning (default);
    //   unpruned — role transformations, no shared board, so the
    //              pruned-vs-unpruned delta isolates the board's benefit
    //              (fewer pages on skewed data) against its contention
    //              cost (the two should track each other on uniform data);
    //   independent — neither feature: the PR 1 baseline
    //              (`--no-transform --no-prune`).
    let pruned = JoinConfig::default();
    let unpruned = JoinConfig::default().without_cross_worker_pruning();
    let independent = JoinConfig::default()
        .without_worker_transforms()
        .without_cross_worker_pruning();
    for workers in [1usize, 2, 4, 8] {
        for (mode, cfg) in [
            ("pruned", &pruned),
            ("unpruned", &unpruned),
            ("independent", &independent),
        ] {
            group.bench_function(format!("workers_{workers}_{mode}"), |bench| {
                bench.iter(|| {
                    black_box(
                        parallel_join(
                            &fixture.idx_a,
                            &fixture.disk_a,
                            &fixture.idx_b,
                            &fixture.disk_b,
                            cfg,
                            workers,
                        )
                        .pairs
                        .len(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let n = 20_000;

    let uniform = TrFixture::new(
        dataset(n, Distribution::Uniform, 30),
        dataset(n, Distribution::Uniform, 31),
    );
    bench_workload(c, &format!("uniform_{n}"), &uniform);

    // Non-uniform: massive clusters against a near-uniform background —
    // maximally skewed per-pivot cost, the case work stealing exists for.
    let nonuniform = TrFixture::new(
        dataset(
            n,
            Distribution::MassiveCluster {
                clusters: 5,
                elements_per_cluster: n / 5,
            },
            32,
        ),
        dataset(n, Distribution::UniformCluster { clusters: 100 }, 33),
    );
    bench_workload(c, &format!("nonuniform_{n}"), &nonuniform);
}

criterion_group!(benches, bench);
criterion_main!(benches);
