//! Criterion bench for Fig. 12: join-phase time on the neuroscience
//! surrogate (axons × dendrites).

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::neuro;
use transformers::JoinConfig;

fn bench(c: &mut Criterion) {
    let (a, b) = neuro::axon_dendrite_pair(30_000, 30);

    let mut group = c.benchmark_group("fig12/axons_x_dendrites");
    group.sample_size(10);

    let tr = TrFixture::new(a.clone(), b.clone());
    group.bench_function("transformers", |bench| {
        bench.iter(|| black_box(tr.join(&JoinConfig::default())))
    });

    let pbsm = PbsmFixture::new(&a, &b);
    group.bench_function("pbsm", |bench| bench.iter(|| black_box(pbsm.join())));

    let rtree = RtreeFixture::new(a, b);
    group.bench_function("rtree", |bench| bench.iter(|| black_box(rtree.join())));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
