//! Criterion bench for Table I: join-phase time on uniformly distributed
//! data, TRANSFORMERS vs PBSM vs R-TREE.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use transformers::JoinConfig;

fn bench(c: &mut Criterion) {
    for n in [10_000usize, 20_000] {
        let a = dataset(n, Distribution::Uniform, 20);
        let b = dataset(n, Distribution::Uniform, 21);

        let mut group = c.benchmark_group(format!("table1/uniform_{n}"));
        group.sample_size(10);

        let tr = TrFixture::new(a.clone(), b.clone());
        group.bench_function("transformers", |bench| {
            bench.iter(|| black_box(tr.join(&JoinConfig::default())))
        });

        let pbsm = PbsmFixture::new(&a, &b);
        group.bench_function("pbsm", |bench| bench.iter(|| black_box(pbsm.join())));

        let rtree = RtreeFixture::new(a, b);
        group.bench_function("rtree", |bench| bench.iter(|| black_box(rtree.join())));

        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
