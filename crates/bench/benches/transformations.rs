//! Criterion bench for Fig. 13 (left): TRANSFORMERS with and without
//! transformations on skewed (contrasting-density) data.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use transformers::JoinConfig;

fn bench(c: &mut Criterion) {
    // Strong local contrast: a small sparse dataset against a large dense
    // one — the regime where the adaptive machinery must pay off.
    let a = dataset(500, Distribution::Uniform, 40);
    let b = dataset(100_000, Distribution::Uniform, 41);
    let tr = TrFixture::new(a, b);

    let mut group = c.benchmark_group("fig13/transformation_impact");
    group.sample_size(10);
    group.bench_function("no_tr", |bench| {
        bench.iter(|| black_box(tr.join(&JoinConfig::without_transformations())))
    });
    group.bench_function("transformers", |bench| {
        bench.iter(|| black_box(tr.join(&JoinConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
