//! Criterion bench for the indexing phase (Fig. 11/12, left panels):
//! TRANSFORMERS vs PBSM partitioning vs R-Tree bulk load.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use tfm_geom::Aabb;
use tfm_storage::Disk;
use transformers::{IndexConfig, TransformersIndex};

fn bench(c: &mut Criterion) {
    let a = dataset(30_000, Distribution::DenseCluster { clusters: 40 }, 70);
    let extent = Aabb::union_all(a.iter().map(|e| e.mbb));

    let mut group = c.benchmark_group("fig11/indexing");
    group.sample_size(10);

    group.bench_function("transformers", |bench| {
        bench.iter(|| {
            let disk = Disk::in_memory(PAGE);
            black_box(TransformersIndex::build(&disk, a.clone(), &IndexConfig::default()).len())
        })
    });

    group.bench_function("pbsm", |bench| {
        bench.iter(|| {
            let disk = Disk::in_memory(PAGE);
            let mut stats = tfm_pbsm::PbsmStats::default();
            black_box(
                tfm_pbsm::pbsm_partition(
                    &disk,
                    &a,
                    extent,
                    &tfm_pbsm::PbsmConfig::default(),
                    &mut stats,
                )
                .len(),
            )
        })
    });

    group.bench_function("rtree", |bench| {
        bench.iter(|| {
            let disk = Disk::in_memory(PAGE);
            black_box(tfm_rtree::RTree::bulk_load(&disk, a.clone()).len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
