//! Criterion bench for Fig. 14: end-to-end adaptive exploration on
//! MassiveCluster data (the workload whose overhead the paper reports),
//! plus the isolated walk+crawl cost per pivot.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use transformers::explore::{adaptive_crawl, adaptive_walk, ExploreScratch};
use transformers::{JoinConfig, NodeId};

fn bench(c: &mut Criterion) {
    let a = dataset(
        20_000,
        Distribution::MassiveCluster {
            clusters: 5,
            elements_per_cluster: 2_000,
        },
        60,
    );
    let b = dataset(
        20_000,
        Distribution::MassiveCluster {
            clusters: 5,
            elements_per_cluster: 2_000,
        },
        61,
    );
    let tr = TrFixture::new(a, b);

    let mut group = c.benchmark_group("fig14/overhead");
    group.sample_size(10);
    group.bench_function("full_join", |bench| {
        bench.iter(|| black_box(tr.join(&JoinConfig::default())))
    });

    // Isolated exploration: one walk + crawl per pivot over the follower.
    let nodes = tr.idx_b.nodes();
    let units = tr.idx_b.units();
    let reach = tr.idx_b.reach_eps();
    let pivots: Vec<_> = tr.idx_a.nodes().iter().map(|n| n.page_mbb).collect();
    group.bench_function("walk_and_crawl_all_pivots", |bench| {
        bench.iter(|| {
            let mut scratch = ExploreScratch::default();
            let mut found = 0usize;
            let mut pos = NodeId(0);
            for pivot in &pivots {
                let r = adaptive_walk(nodes, reach, pivot, pos, 64, &mut scratch);
                pos = r.found.unwrap_or(r.closest);
                if let Some(nf) = r.found {
                    let crawl = adaptive_crawl(nodes, units, reach, pivot, nf, &mut scratch);
                    found += crawl.candidates.len();
                }
            }
            black_box(found)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
