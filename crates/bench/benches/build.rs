//! Scaling bench for the staged index-build pipeline: build-phase wall
//! time at 1/2/4/8 workers for every STR-indexed structure (the
//! TRANSFORMERS hierarchy, GIPSY's sparse file, the STR-packed R-Tree).
//!
//! The 1-worker pipeline runs the exact sequential code path, so the
//! `workers_1` rows double as the pre-pipeline baseline and the curves
//! show pure parallelization gain (or, on a single-CPU machine, the
//! pipeline's overhead, which should stay within a few percent).
//!
//! The build is byte-identical at every worker count — this bench measures
//! time only; determinism is enforced by the `build_determinism` tests.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use tfm_gipsy::SparseFile;
use tfm_rtree::RTree;
use tfm_storage::Disk;
use transformers::{IndexBuildPipeline, IndexConfig, TransformersIndex};

fn bench_dataset(c: &mut Criterion, label: &str, elems: &[tfm_geom::SpatialElement]) {
    let mut group = c.benchmark_group(format!("build/{label}"));
    group.sample_size(10);

    for workers in [1usize, 2, 4, 8] {
        let cfg = IndexConfig::default().with_build_threads(workers);
        group.bench_function(format!("transformers_workers_{workers}"), |bench| {
            bench.iter(|| {
                let disk = Disk::in_memory(PAGE);
                let idx = TransformersIndex::build(&disk, elems.to_vec(), &cfg);
                black_box(idx.nodes().len())
            })
        });
    }

    // The baselines share the same pipeline; measure the ends of the
    // scaling range to keep the suite short.
    for workers in [1usize, 4] {
        let pipeline = IndexBuildPipeline::new(workers);
        group.bench_function(format!("rtree_workers_{workers}"), |bench| {
            bench.iter(|| {
                let disk = Disk::in_memory(PAGE);
                let tree = RTree::bulk_load_pipelined(&disk, elems.to_vec(), &pipeline);
                black_box(tree.height())
            })
        });
        group.bench_function(format!("gipsy_sparse_workers_{workers}"), |bench| {
            bench.iter(|| {
                let disk = Disk::in_memory(PAGE);
                let file = SparseFile::write_with(&disk, elems.to_vec(), &pipeline);
                black_box(file.page_count())
            })
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let n = 50_000;
    bench_dataset(
        c,
        &format!("uniform_{n}"),
        &dataset(n, Distribution::Uniform, 40),
    );
    // Clustered data skews the per-slab work — the case the work-stealing
    // chunk scheduler inside the pool exists for.
    bench_dataset(
        c,
        &format!("clustered_{n}"),
        &dataset(
            n,
            Distribution::MassiveCluster {
                clusters: 5,
                elements_per_cluster: n / 5,
            },
            41,
        ),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
