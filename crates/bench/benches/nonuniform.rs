//! Criterion bench for Fig. 11: join-phase time on non-uniform data
//! (DenseCluster × UniformCluster), TRANSFORMERS vs PBSM vs R-TREE.

mod common;

use common::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfm_datagen::Distribution;
use transformers::JoinConfig;

fn bench(c: &mut Criterion) {
    let a = dataset(15_000, Distribution::DenseCluster { clusters: 40 }, 10);
    let b = dataset(15_000, Distribution::UniformCluster { clusters: 8 }, 11);

    let mut group = c.benchmark_group("fig11/densecluster_x_uniformcluster");
    group.sample_size(10);

    let tr = TrFixture::new(a.clone(), b.clone());
    group.bench_function("transformers", |bench| {
        bench.iter(|| black_box(tr.join(&JoinConfig::default())))
    });

    let pbsm = PbsmFixture::new(&a, &b);
    group.bench_function("pbsm", |bench| bench.iter(|| black_box(pbsm.join())));

    let rtree = RtreeFixture::new(a, b);
    group.bench_function("rtree", |bench| bench.iter(|| black_box(rtree.join())));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
