//! Chunked work dealing: static sharding plus work stealing, with a
//! cancellation switch.
//!
//! A list of `items` task indices is split into contiguous chunks that are
//! dealt to per-worker deques up front (*static sharding* — contiguous
//! ranges preserve whatever locality the caller's task order encodes).
//! Task cost may be arbitrarily skewed, so workers that drain their own
//! deque *steal* chunks from the back of the fullest other deque
//! (stragglers keep the front of their own queue, preserving their
//! locality run).
//!
//! [`cancel`](ChunkScheduler::cancel) discards all still-queued work: own
//! pops and steals alike return `None` from then on, and the never-dealt
//! tail is reported by [`chunks_cancelled`](ChunkScheduler::chunks_cancelled).
//! The join path uses this for its prune announcements ("the follower
//! dataset is fully covered — every queued pivot is redundant").

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A contiguous range of task indices, `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First task index in the chunk.
    pub start: usize,
    /// One past the last task index.
    pub end: usize,
}

impl Chunk {
    /// Number of tasks in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the chunk covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Deals task chunks to a fixed set of workers, with stealing.
pub struct ChunkScheduler {
    queues: Vec<Mutex<VecDeque<Chunk>>>,
    chunks: usize,
    chunk_size: usize,
    steals: AtomicU64,
    dispatched: AtomicU64,
    cancelled: AtomicBool,
}

impl ChunkScheduler {
    /// Partitions `items` task indices among `workers` workers in chunks
    /// of at most `chunk_size` tasks each.
    ///
    /// Each worker's static share is one contiguous slab of the index
    /// range (worker 0 gets the lowest indices), sliced into chunks so
    /// that stealing has useful granularity.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `chunk_size == 0`.
    pub fn new(items: usize, workers: usize, chunk_size: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut queues: Vec<VecDeque<Chunk>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut chunks = 0;
        let per_worker = items.div_ceil(workers);
        for (w, queue) in queues.iter_mut().enumerate() {
            let slab_start = (w * per_worker).min(items);
            let slab_end = ((w + 1) * per_worker).min(items);
            let mut start = slab_start;
            while start < slab_end {
                let end = (start + chunk_size).min(slab_end);
                queue.push_back(Chunk { start, end });
                chunks += 1;
                start = end;
            }
        }
        Self {
            queues: queues.into_iter().map(Mutex::new).collect(),
            chunks,
            chunk_size,
            steals: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Total chunks dealt at construction.
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// The chunk size used at construction.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Chunks obtained by stealing so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Discards all still-queued work: the scheduler stops dealing chunks —
    /// own-deque pops and steals alike return `None` from now on.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Has the scheduler been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Chunks dealt at construction but never dispatched because a
    /// cancellation discarded them. Meaningful once the workers have
    /// drained (after the caller's thread scope ends).
    pub fn chunks_cancelled(&self) -> u64 {
        self.chunks as u64 - self.dispatched.load(Ordering::Acquire)
    }

    /// Fetches the next chunk for `worker`: the front of its own deque,
    /// or — once that is empty — the back of the fullest other deque.
    /// Returns `None` when every deque is empty or a cancellation has
    /// discarded the remaining work.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn next(&self, worker: usize) -> Option<Chunk> {
        if self.is_cancelled() {
            return None;
        }
        if let Some(chunk) = self.queues[worker]
            .lock()
            .expect("scheduler lock poisoned")
            .pop_front()
        {
            self.dispatched.fetch_add(1, Ordering::AcqRel);
            return Some(chunk);
        }
        // Own deque drained: steal from the back of the fullest victim so
        // the victim keeps the locality run at the front of its queue.
        loop {
            // Stealing also respects cancellation — a straggler's backlog
            // is exactly the work a cancellation makes redundant.
            if self.is_cancelled() {
                return None;
            }
            let mut best: Option<(usize, usize)> = None;
            for (v, queue) in self.queues.iter().enumerate() {
                if v == worker {
                    continue;
                }
                let len = queue.lock().expect("scheduler lock poisoned").len();
                if len > 0 && best.is_none_or(|(_, blen)| len > blen) {
                    best = Some((v, len));
                }
            }
            let (victim, _) = best?;
            // The victim may have been drained between the scan and this
            // lock; retry the scan in that case.
            if let Some(chunk) = self.queues[victim]
                .lock()
                .expect("scheduler lock poisoned")
                .pop_back()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.dispatched.fetch_add(1, Ordering::AcqRel);
                return Some(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn drain_all(sched: &ChunkScheduler, worker: usize) -> Vec<Chunk> {
        std::iter::from_fn(|| sched.next(worker)).collect()
    }

    #[test]
    fn covers_every_task_exactly_once() {
        for (items, workers, chunk) in [(100, 4, 8), (7, 3, 2), (1, 1, 1), (64, 8, 64)] {
            let sched = ChunkScheduler::new(items, workers, chunk);
            let mut seen = BTreeSet::new();
            for c in drain_all(&sched, 0) {
                for p in c.start..c.end {
                    assert!(seen.insert(p), "task {p} dealt twice");
                }
            }
            assert_eq!(seen.len(), items);
            assert_eq!(seen.first().copied(), (items > 0).then_some(0));
            assert_eq!(seen.last().copied(), items.checked_sub(1));
        }
    }

    #[test]
    fn zero_tasks_yield_nothing() {
        let sched = ChunkScheduler::new(0, 4, 16);
        assert_eq!(sched.next(2), None);
        assert_eq!(sched.chunk_count(), 0);
    }

    #[test]
    fn chunks_respect_size_bound() {
        let sched = ChunkScheduler::new(1000, 3, 16);
        for c in drain_all(&sched, 1) {
            assert!(c.len() <= 16 && !c.is_empty());
        }
    }

    #[test]
    fn stealing_kicks_in_when_own_queue_is_empty() {
        let sched = ChunkScheduler::new(64, 2, 4);
        // Worker 1 drains everything, including worker 0's share.
        let got = drain_all(&sched, 1);
        assert_eq!(got.iter().map(Chunk::len).sum::<usize>(), 64);
        assert!(sched.steals() > 0, "expected steals, got none");
    }

    #[test]
    fn own_chunks_come_in_order() {
        let sched = ChunkScheduler::new(32, 2, 4);
        let mut prev = None;
        while let Some(c) = sched.next(0) {
            if sched.steals() > 0 {
                break; // once stealing starts, order is no longer local
            }
            if let Some(p) = prev {
                assert!(c.start >= p, "own chunks must advance");
            }
            prev = Some(c.end);
        }
    }

    #[test]
    fn cancellation_discards_remaining_chunks() {
        let sched = ChunkScheduler::new(64, 2, 4); // 16 chunks
        assert!(sched.next(0).is_some());
        assert!(sched.next(1).is_some());
        assert!(!sched.is_cancelled());
        sched.cancel();
        assert!(sched.is_cancelled());
        // Own-deque pops and steals both stop.
        assert_eq!(sched.next(0), None);
        assert_eq!(sched.next(1), None);
        assert_eq!(sched.chunks_cancelled(), 14);
        assert_eq!(sched.steals(), 0);
    }

    #[test]
    fn full_drain_cancels_nothing() {
        let sched = ChunkScheduler::new(100, 3, 7);
        let n = drain_all(&sched, 0).len() as u64;
        assert_eq!(sched.chunks_cancelled(), 0);
        assert_eq!(n, sched.chunk_count() as u64);
    }

    #[test]
    fn concurrent_drain_is_exact() {
        let sched = ChunkScheduler::new(500, 4, 8);
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let sched = &sched;
                    s.spawn(move || drain_all(sched, w).iter().map(Chunk::len).sum::<usize>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 500);
    }
}
