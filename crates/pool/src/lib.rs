//! **tfm-pool** — the scoped worker pool underneath every parallel stage
//! of the reproduction.
//!
//! PR 1/PR 2 grew a worker pool inside `tfm-exec` for the join phase only.
//! Index building is just as data-parallel (the STR passes, element-page
//! encoding and the connectivity self-join all decompose into independent
//! tasks), but `tfm-exec` sits *above* the core crate in the dependency
//! graph, so the pool had to move down. This crate is that extraction: the
//! machinery with no join-specific policy, re-exported as `tfm_exec::pool`
//! for the join path and consumed directly by `tfm-partition` and the
//! core's `IndexBuildPipeline`.
//!
//! Three pieces:
//!
//! * [`ChunkScheduler`] — deals contiguous index chunks to per-worker
//!   deques (static sharding), with stealing from the back of the fullest
//!   victim once a worker's own deque drains, and a
//!   [`cancel`](ChunkScheduler::cancel) switch that discards all queued work
//!   (the join path's prune announcements);
//! * [`StagePool`] — spawn-scoped workers ([`StagePool::scoped_run`]) and
//!   deterministic data-parallel combinators on top of them:
//!   [`map`](StagePool::map) / [`map_range`](StagePool::map_range) /
//!   [`map_owned`](StagePool::map_owned) return outputs in **input order**
//!   regardless of thread count or scheduling, which is what lets the
//!   parallel index build produce byte-identical pages;
//! * [`StagePool::sort_by`] — a parallel **stable** merge sort whose result
//!   is identical to `slice::sort_by` (stable sorts have a unique output),
//!   so parallel STR coordinate sorts reproduce the sequential partitioner
//!   exactly.
//!
//! Everything runs on `std::thread::scope` — workers borrow their inputs,
//! no `'static` bounds, no channels, and the pool itself is just a thread
//! count: constructing one is free, so every stage can own its own.

#![warn(missing_docs)]

mod scheduler;

pub use scheduler::{Chunk, ChunkScheduler};

use std::cmp::Ordering;
use std::sync::Mutex;

/// A fixed-width scoped worker pool: `threads` workers are spawned per
/// stage invocation and joined before the call returns.
///
/// All combinators are **deterministic**: their results depend only on the
/// inputs, never on thread count or interleaving. A pool of one thread
/// runs everything inline on the caller's thread with no scheduler
/// overhead, so `StagePool::sequential()` is the exact sequential code
/// path, not a degenerate parallel one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePool {
    threads: usize,
}

impl StagePool {
    /// A pool of `threads` workers (`0` is clamped to 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: combinators run inline on the caller.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True if the pool runs everything inline (one worker).
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Chunk size used by the map combinators: several chunks per worker
    /// for steal granularity, capped so tiny inputs are not shredded.
    fn chunk_size(&self, items: usize) -> usize {
        (items / (self.threads * 8)).clamp(1, 1024)
    }

    /// Spawns one scoped worker per thread, runs `f(worker_index)` on each,
    /// and returns the results **in worker order** (the deterministic merge
    /// the parallel join's per-worker buffers rely on).
    ///
    /// # Panics
    /// Propagates a panic from any worker.
    pub fn scoped_run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.is_sequential() {
            return vec![f(0)];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|w| {
                    let f = &f;
                    scope.spawn(move || f(w))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // Re-raise with the original payload so a worker's
                    // assertion message is not lost behind a generic one.
                    h.join()
                        .unwrap_or_else(|err| std::panic::resume_unwind(err))
                })
                .collect()
        })
    }

    /// Applies `f` to every index in `0..count` across the pool and returns
    /// the outputs in index order.
    ///
    /// Work is dealt through a [`ChunkScheduler`] (contiguous chunks, steal
    /// on drain); each worker tags its output runs with their start index,
    /// and the runs are stitched back in order after the scope joins.
    pub fn map_range<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.is_sequential() || count <= 1 {
            return (0..count).map(f).collect();
        }
        let scheduler = ChunkScheduler::new(count, self.threads, self.chunk_size(count));
        let per_worker: Vec<Vec<(usize, Vec<R>)>> = self.scoped_run(|w| {
            let mut runs = Vec::new();
            while let Some(chunk) = scheduler.next(w) {
                let run: Vec<R> = (chunk.start..chunk.end).map(&f).collect();
                runs.push((chunk.start, run));
            }
            runs
        });
        let mut tagged: Vec<(usize, Vec<R>)> = per_worker.into_iter().flatten().collect();
        tagged.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(count);
        for (_, run) in tagged {
            out.extend(run);
        }
        debug_assert_eq!(out.len(), count);
        out
    }

    /// Applies `f` to every element of `items` across the pool; outputs
    /// come back in input order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_range(items.len(), |i| f(i, &items[i]))
    }

    /// Consuming map: every task in `tasks` is handed to exactly one worker
    /// (by value); outputs come back in input order. Used for fanning out
    /// owned work items such as STR slabs.
    pub fn map_owned<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.is_sequential() || tasks.len() <= 1 {
            return tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.map_range(slots.len(), |i| {
            let task = slots[i]
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("task taken twice");
            f(i, task)
        })
    }

    /// Sorts `items` with a parallel **stable** merge sort; the result is
    /// identical to `items.sort_by(cmp)` for any thread count (a stable
    /// sort's output is unique), so callers may switch freely between the
    /// two.
    pub fn sort_by<T, F>(&self, items: &mut Vec<T>, cmp: F)
    where
        T: Send,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        let n = items.len();
        // Below ~2 items per worker the split is pure overhead.
        if self.is_sequential() || n < self.threads * 2 {
            items.sort_by(cmp);
            return;
        }
        // Split into `threads` contiguous runs, stable-sort each in
        // parallel, then merge adjacent runs pairwise (left-biased merge
        // keeps stability). Each merge round's pairs are independent, so
        // the rounds fan out over the pool too — without this the O(n)
        // merge passes would serialize on the caller and cap the sort's
        // scaling (Amdahl).
        let run_len = n.div_ceil(self.threads);
        let mut runs: Vec<Vec<T>> = Vec::with_capacity(self.threads);
        let mut rest = std::mem::take(items);
        while rest.len() > run_len {
            let tail = rest.split_off(run_len);
            runs.push(rest);
            rest = tail;
        }
        runs.push(rest);
        let mut runs: Vec<Vec<T>> = self.map_owned(runs, |_, mut run| {
            run.sort_by(&cmp);
            run
        });
        while runs.len() > 1 {
            let mut pairs: Vec<(Vec<T>, Option<Vec<T>>)> =
                Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(left) = it.next() {
                pairs.push((left, it.next()));
            }
            runs = self.map_owned(pairs, |_, (left, right)| match right {
                Some(right) => merge_stable(left, right, &cmp),
                None => left,
            });
        }
        *items = runs.pop().unwrap_or_default();
    }
}

/// Merges two sorted runs, taking from `left` on ties (stability).
fn merge_stable<T, F>(left: Vec<T>, right: Vec<T>, cmp: &F) -> Vec<T>
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut l = left.into_iter().peekable();
    let mut r = right.into_iter().peekable();
    loop {
        match (l.peek(), r.peek()) {
            (Some(a), Some(b)) => {
                if cmp(a, b) == Ordering::Greater {
                    out.push(r.next().expect("peeked"));
                } else {
                    out.push(l.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(l);
                break;
            }
            (None, _) => {
                out.extend(r);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = StagePool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_sequential());
    }

    #[test]
    fn scoped_run_returns_worker_order() {
        for threads in [1, 2, 4, 7] {
            let pool = StagePool::new(threads);
            let got = pool.scoped_run(|w| w * 10);
            let expected: Vec<usize> = (0..threads).map(|w| w * 10).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn map_range_is_in_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let pool = StagePool::new(threads);
            let got = pool.map_range(1000, |i| i * i);
            let expected: Vec<usize> = (0..1000).map(|i| i * i).collect();
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_borrows_inputs() {
        let items: Vec<String> = (0..100).map(|i| format!("item{i}")).collect();
        let pool = StagePool::new(4);
        let got = pool.map(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got.len(), 100);
        assert_eq!(got[42], "42:item42");
    }

    #[test]
    fn map_owned_consumes_each_task_exactly_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Vec<u32>> = (0..50).map(|i| vec![i; 3]).collect();
        let pool = StagePool::new(4);
        let got = pool.map_owned(tasks, |i, t| {
            counter.fetch_add(1, AtomicOrdering::Relaxed);
            (i, t.len())
        });
        assert_eq!(counter.load(AtomicOrdering::Relaxed), 50);
        for (i, (idx, len)) in got.iter().enumerate() {
            assert_eq!((i, 3), (*idx, *len));
        }
    }

    #[test]
    fn map_range_empty_and_single() {
        let pool = StagePool::new(4);
        assert!(pool.map_range(0, |i| i).is_empty());
        assert_eq!(pool.map_range(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn parallel_sort_matches_sequential_stable_sort() {
        // Sort by a *non-unique* key so stability is observable through the
        // unique payload.
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let items: Vec<(u64, u64)> = (0..10_000).map(|i| (next() % 97, i)).collect();
        let mut expected = items.clone();
        expected.sort_by_key(|a| a.0);
        for threads in [2, 3, 4, 8] {
            let mut got = items.clone();
            StagePool::new(threads).sort_by(&mut got, |a, b| a.0.cmp(&b.0));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_sort_tiny_inputs() {
        let pool = StagePool::new(8);
        let mut v: Vec<u32> = vec![];
        pool.sort_by(&mut v, |a, b| a.cmp(b));
        assert!(v.is_empty());
        let mut v = vec![3u32, 1, 2];
        pool.sort_by(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn merge_stable_prefers_left_on_ties() {
        let left = vec![(1, 'l'), (2, 'l')];
        let right = vec![(1, 'r'), (3, 'r')];
        let got = merge_stable(left, right, &|a: &(i32, char), b: &(i32, char)| {
            a.0.cmp(&b.0)
        });
        assert_eq!(got, vec![(1, 'l'), (1, 'r'), (2, 'l'), (3, 'r')]);
    }
}
