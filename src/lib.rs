//! Umbrella crate for the **TRANSFORMERS** (ICDE 2016) reproduction.
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`transformers`] — the adaptive spatial join (the paper's
//!   contribution): indexing, adaptive exploration, transformations;
//! * [`exec`] — the parallel execution subsystem (`parallel_join`):
//!   pivot scheduling, work stealing, scoped worker pool;
//! * [`serve`] — the concurrent query-serving subsystem: window /
//!   point-enclosure / distance probes against shared indexes, with
//!   admission control and locality-aware (Hilbert-ordered) batching;
//! * [`baselines`] — PBSM, synchronized R-Tree, GIPSY;
//! * [`geom`], [`storage`], [`datagen`], [`memjoin`], [`partition`],
//!   [`bptree`] — the substrates everything is built on.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the architecture.
//!
//! ```
//! use transformers_repro::prelude::*;
//!
//! let disk_a = Disk::default_in_memory();
//! let disk_b = Disk::default_in_memory();
//! let a = generate(&DatasetSpec::uniform(1_000, 1));
//! let b = generate(&DatasetSpec::uniform(1_000, 2));
//! let idx_a = TransformersIndex::build(&disk_a, a, &IndexConfig::default());
//! let idx_b = TransformersIndex::build(&disk_b, b, &IndexConfig::default());
//! let out = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
//! assert_eq!(out.pairs.len() as u64, out.stats.unique_results);
//! ```

#![warn(missing_docs)]

pub use tfm_bptree as bptree;
pub use tfm_datagen as datagen;
pub use tfm_exec as exec;
pub use tfm_geom as geom;
pub use tfm_memjoin as memjoin;
pub use tfm_obs as obs;
pub use tfm_partition as partition;
pub use tfm_pool as pool;
pub use tfm_serve as serve;
pub use tfm_storage as storage;
pub use transformers;

/// The baseline join approaches the paper compares against (PBSM, the
/// synchronized R-Tree, GIPSY) plus the related-work baselines it
/// discusses (SSSJ, S3).
pub mod baselines {
    pub use tfm_gipsy as gipsy;
    pub use tfm_pbsm as pbsm;
    pub use tfm_rtree as rtree;
    pub use tfm_sweep as sweep;
}

/// Common imports for examples and quick experiments.
pub mod prelude {
    pub use tfm_datagen::{
        generate, generate_trace, neuro, DatasetSpec, Distribution, ProbeMix, QueryTraceSpec,
    };
    pub use tfm_exec::{parallel_join, parallel_join_with_report, ExecReport};
    pub use tfm_geom::{Aabb, Point3, SpatialElement, SpatialQuery};
    pub use tfm_memjoin::{canonicalize, JoinStats, ResultPair};
    pub use tfm_serve::{
        serve_trace, GipsyEngine, QueryEngine, RtreeEngine, ServeConfig, ServeStats,
        TransformersEngine,
    };
    pub use tfm_storage::{BufferPool, Disk, DiskModel};
    pub use transformers::{
        transformers_join, GuidePick, IndexBuildPipeline, IndexConfig, JoinConfig, ThresholdPolicy,
        TransformersIndex,
    };
}
