//! Acceptance contract of the adaptive parallel join (PR 2): with role
//! transformations and cross-worker pruning enabled, `parallel_join`
//! returns a **byte-identical** pair vector to `transformers_join` at 1, 2
//! and 4 workers on uniform and clustered workloads — and on the clustered
//! ones it actually *adapts* (nonzero transformation and prune counters).

use transformers_repro::prelude::*;

struct Fixture {
    disk_a: Disk,
    idx_a: TransformersIndex,
    disk_b: Disk,
    idx_b: TransformersIndex,
}

impl Fixture {
    fn new(a: Vec<SpatialElement>, b: Vec<SpatialElement>, idx_cfg: &IndexConfig) -> Self {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let idx_a = TransformersIndex::build(&disk_a, a, idx_cfg);
        let idx_b = TransformersIndex::build(&disk_b, b, idx_cfg);
        Self {
            disk_a,
            idx_a,
            disk_b,
            idx_b,
        }
    }

    fn sequential(&self, cfg: &JoinConfig) -> Vec<ResultPair> {
        transformers_join(&self.idx_a, &self.disk_a, &self.idx_b, &self.disk_b, cfg).pairs
    }

    fn parallel(
        &self,
        cfg: &JoinConfig,
        threads: usize,
    ) -> (Vec<ResultPair>, transformers::TransformersStats) {
        let out = parallel_join(
            &self.idx_a,
            &self.disk_a,
            &self.idx_b,
            &self.disk_b,
            cfg,
            threads,
        );
        (out.pairs, out.stats)
    }
}

/// Small node capacities make density contrast *local*, so the adaptive
/// machinery has something to react to even at test scale.
fn contrasty_index() -> IndexConfig {
    IndexConfig {
        unit_capacity: Some(32),
        node_capacity: Some(8),
        ..IndexConfig::default()
    }
}

#[test]
fn uniform_workload_is_byte_identical_at_1_2_4_workers() {
    let a = generate(&DatasetSpec {
        max_side: 8.0,
        ..DatasetSpec::uniform(4_000, 300)
    });
    let b = generate(&DatasetSpec {
        max_side: 8.0,
        ..DatasetSpec::uniform(4_000, 301)
    });
    let fx = Fixture::new(a, b, &IndexConfig::default());
    let cfg = JoinConfig::default();
    let seq = fx.sequential(&cfg);
    assert!(!seq.is_empty());
    for threads in [1, 2, 4] {
        let (pairs, _) = fx.parallel(&cfg, threads);
        assert_eq!(pairs, seq, "threads = {threads}");
    }
}

#[test]
fn clustered_workload_is_byte_identical_and_adapts() {
    let a = generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::with_distribution(15_000, Distribution::massive_cluster_for(15_000), 302)
    });
    let b = generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::uniform(15_000, 303)
    });
    let fx = Fixture::new(a, b, &contrasty_index());
    let cfg = JoinConfig::default();
    let seq = fx.sequential(&cfg);
    assert!(!seq.is_empty());
    for threads in [1, 2, 4] {
        let (pairs, stats) = fx.parallel(&cfg, threads);
        assert_eq!(pairs, seq, "threads = {threads}");
        assert!(
            stats.role_transformations + stats.layout_transformations > 0,
            "threads = {threads}: clustered contrast must transform: {stats:?}"
        );
        assert!(
            stats.pruned_units > 0,
            "threads = {threads}: covered pivots must feed the to-do filter: {stats:?}"
        );
    }
}

/// Pulls element centers towards the origin by `f` while keeping box
/// sizes, raising density without touching the clustered structure (the
/// surrogate's paper-faithful 1000³ universe is near-disjoint at test
/// scale).
fn compact(elems: Vec<SpatialElement>, f: f64) -> Vec<SpatialElement> {
    elems
        .into_iter()
        .map(|e| {
            let c = e.mbb.center();
            let (hx, hy, hz) = (
                e.mbb.extent(0) / 2.0,
                e.mbb.extent(1) / 2.0,
                e.mbb.extent(2) / 2.0,
            );
            SpatialElement::new(
                e.id,
                Aabb::new(
                    Point3::new(c.x * f - hx, c.y * f - hy, c.z * f - hz),
                    Point3::new(c.x * f + hx, c.y * f + hy, c.z * f + hz),
                ),
            )
        })
        .collect()
}

#[test]
fn neuro_workload_is_byte_identical_at_1_2_4_workers() {
    // The paper's target domain: axon × dendrite spatial join. Neuron
    // morphologies are clustered along z, exercising walk, crawl and the
    // transformation decisions together.
    let (a, b) = neuro::axon_dendrite_pair(12_000, 304);
    let fx = Fixture::new(compact(a, 0.15), compact(b, 0.15), &contrasty_index());
    let cfg = JoinConfig::default();
    let seq = fx.sequential(&cfg);
    assert!(!seq.is_empty());
    for threads in [1, 2, 4] {
        let (pairs, _) = fx.parallel(&cfg, threads);
        assert_eq!(pairs, seq, "threads = {threads}");
    }
}

#[test]
fn escape_hatches_preserve_results_on_clustered_data() {
    let a = generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::with_distribution(8_000, Distribution::massive_cluster_for(8_000), 305)
    });
    let b = generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::uniform(8_000, 306)
    });
    let fx = Fixture::new(a, b, &contrasty_index());
    let seq = fx.sequential(&JoinConfig::default());
    for cfg in [
        JoinConfig::default().without_worker_transforms(),
        JoinConfig::default().without_cross_worker_pruning(),
        JoinConfig::default()
            .without_worker_transforms()
            .without_cross_worker_pruning(),
    ] {
        for threads in [2, 4] {
            let (pairs, _) = fx.parallel(&cfg, threads);
            assert_eq!(pairs, seq, "cfg = {cfg:?}, threads = {threads}");
        }
    }
}
