//! Acceptance tests for the sharded scatter-gather serve cluster
//! (`tfm-serve`'s shard module):
//!
//! * every (shards, workers) combination from {1,2,4,8} × {1,2,4}
//!   answers a trace **byte-identically** to the unsharded serve path
//!   and to a sequential full-scan reference — on every engine and
//!   both partitioners;
//! * property test: a probe's routed shard set always covers every
//!   shard that holds a matching element (routing soundness), and the
//!   sharded answer stays equal to the oracle.

use proptest::prelude::*;
use tfm_datagen::{generate, generate_trace, DatasetSpec, ProbeMix, QueryTraceSpec};
use tfm_geom::{Aabb, ElementId, HasMbb, SpatialElement, SpatialQuery};
use tfm_serve::{
    plan_shards, serve_sharded, serve_trace, ServeConfig, ShardEngineKind, ShardPartitioner,
    ShardRouter, ShardServeConfig, ShardSpec, ShardedCluster, TransformersEngine,
};
use tfm_storage::Disk;
use transformers::{IndexConfig, TransformersIndex};

const PAGE: usize = 2048;

/// The sequential reference: one full scan per query.
fn reference(elems: &[SpatialElement], trace: &[SpatialQuery]) -> Vec<Vec<ElementId>> {
    trace
        .iter()
        .map(|q| {
            let mut ids: Vec<ElementId> = elems
                .iter()
                .filter(|e| q.matches(&e.mbb))
                .map(|e| e.id)
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

#[test]
fn every_shard_and_worker_count_matches_the_unsharded_path() {
    let elems = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(5_000, 501)
    });
    let trace = generate_trace(&QueryTraceSpec::with_mix(
        200,
        ProbeMix::Clustered { clusters: 4 },
        502,
    ));
    let expected = reference(&elems, &trace);

    // Unsharded serve agrees with the oracle (anchor for "byte-identical
    // to the unsharded path").
    let disk = Disk::in_memory(PAGE);
    let idx = TransformersIndex::build(&disk, elems.clone(), &IndexConfig::default());
    let engine = TransformersEngine::new(&idx, &disk);
    let unsharded = serve_trace(&engine, &trace, &ServeConfig::default());
    assert_eq!(unsharded.results, expected);

    for engine in [
        ShardEngineKind::Transformers,
        ShardEngineKind::Gipsy,
        ShardEngineKind::Rtree,
    ] {
        for shards in [1usize, 2, 4, 8] {
            let spec = ShardSpec::default().with_shards(shards).with_engine(engine);
            let cluster = ShardedCluster::build(elems.clone(), &spec);
            for workers in [1usize, 2, 4] {
                let out = serve_sharded(
                    &cluster,
                    &trace,
                    &ShardServeConfig::default().with_workers(workers),
                );
                assert_eq!(
                    out.results, expected,
                    "engine={engine:?} shards={shards} workers={workers}"
                );
                assert_eq!(out.stats.queries, trace.len() as u64);
                assert_eq!(out.stats.shed_partials, 0);
                // Every routed partial executed (no silent drops).
                let executed: u64 = out.stats.per_shard.iter().map(|s| s.executed).sum();
                assert_eq!(executed, out.stats.routed_partials);
            }
        }
    }
}

#[test]
fn both_partitioners_agree_with_the_oracle() {
    let elems = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(3_000, 503)
    });
    let trace = generate_trace(&QueryTraceSpec::uniform(150, 504));
    let expected = reference(&elems, &trace);
    for partitioner in [ShardPartitioner::Hilbert, ShardPartitioner::Str] {
        let spec = ShardSpec::default()
            .with_shards(4)
            .with_partitioner(partitioner);
        let cluster = ShardedCluster::build(elems.clone(), &spec);
        let out = serve_sharded(&cluster, &trace, &ShardServeConfig::default());
        assert_eq!(out.results, expected, "partitioner={partitioner:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Routing soundness: for every query, the routed shard set covers
    // every shard whose partition holds a matching element — so no
    // shard that could contribute to the answer is skipped — and the
    // gathered answer equals the full-scan oracle.
    #[test]
    fn routed_shards_always_cover_matching_partitions(
        n in 300usize..2000,
        data_seed in 0u64..1000,
        trace_seed in 0u64..1000,
        queries in 10usize..60,
        shards in 2usize..8,
        max_side in 1.0f64..8.0,
    ) {
        let elems = generate(&DatasetSpec {
            max_side,
            ..DatasetSpec::uniform(n, data_seed)
        });
        let trace = generate_trace(&QueryTraceSpec {
            count: queries,
            ..QueryTraceSpec::uniform(queries, trace_seed)
        });
        let spec = ShardSpec::default().with_shards(shards);
        let partitions = plan_shards(&elems, shards, spec.partitioner);
        let router = ShardRouter::new(
            partitions
                .iter()
                .map(|p| Aabb::union_all(p.iter().map(|e| e.mbb())))
                .collect(),
        );
        for q in &trace {
            let routed = router.route(q);
            for (s, part) in partitions.iter().enumerate() {
                let has_match = part.iter().any(|e| q.matches(&e.mbb));
                if has_match {
                    prop_assert!(
                        routed.contains(&s),
                        "shard {s} holds a match but was not routed (routed={routed:?})"
                    );
                }
            }
        }
        let cluster = ShardedCluster::build(elems.clone(), &spec);
        let out = serve_sharded(&cluster, &trace, &ShardServeConfig::default());
        prop_assert_eq!(out.results, reference(&elems, &trace));
    }
}
