//! Observability must be free of *observer effects*: turning the
//! `tfm-obs` registry (and per-query tracing) on must leave every join
//! and serve result byte-identical at every worker count, and the
//! exported snapshots must round-trip losslessly.
//!
//! All tests here toggle the process-global registry, so they serialize
//! on one lock — Rust's test harness runs them on concurrent threads.

use std::sync::Mutex;
use transformers_repro::baselines::rtree;
use transformers_repro::obs;
use transformers_repro::prelude::*;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn uniform(count: usize, seed: u64) -> Vec<SpatialElement> {
    generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(count, seed)
    })
}

fn build(elems: &[SpatialElement]) -> (Disk, TransformersIndex) {
    let disk = Disk::default_in_memory();
    let idx = TransformersIndex::build(&disk, elems.to_vec(), &IndexConfig::default());
    (disk, idx)
}

#[test]
fn join_results_identical_with_metrics_on_and_off_at_every_worker_count() {
    let _guard = OBS_LOCK.lock().unwrap();
    let a = uniform(3_000, 90);
    let b = uniform(3_000, 91);
    let (disk_a, idx_a) = build(&a);
    let (disk_b, idx_b) = build(&b);
    let cfg = JoinConfig::default();

    // Sequential reference with metrics off.
    obs::set_enabled(false);
    let reference = canonicalize(
        transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg)
            .pairs
            .clone(),
    );

    // Sequential with metrics on publishes but must not perturb.
    obs::set_enabled(true);
    obs::global().reset();
    let seq_on = canonicalize(
        transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg)
            .pairs
            .clone(),
    );
    assert_eq!(seq_on, reference, "sequential join perturbed by metrics");
    assert!(
        obs::global()
            .snapshot()
            .counter(obs::names::JOIN_TESTS)
            .unwrap_or(0)
            > 0,
        "sequential join must publish its stats"
    );

    for threads in [1usize, 2, 4, 8] {
        for on in [false, true] {
            obs::set_enabled(on);
            if on {
                obs::global().reset();
            }
            let pairs =
                canonicalize(parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads).pairs);
            assert_eq!(
                pairs, reference,
                "parallel join diverged (threads={threads}, metrics={on})"
            );
            if on {
                let snap = obs::global().snapshot();
                assert!(
                    snap.counter(obs::names::JOIN_CHUNKS).unwrap_or(0) > 0,
                    "parallel join must publish chunk counts"
                );
                assert!(
                    snap.histogram(obs::names::JOIN_CHUNK_NANOS)
                        .map(|h| h.count)
                        .unwrap_or(0)
                        > 0,
                    "per-chunk span timings must be recorded"
                );
            }
        }
    }
    obs::set_enabled(false);
}

#[test]
fn serve_results_identical_with_metrics_and_tracing_on() {
    let _guard = OBS_LOCK.lock().unwrap();
    let elems = uniform(4_000, 92);
    let (disk, idx) = build(&elems);
    let engine = TransformersEngine::new(&idx, &disk).with_shared_cache(512, 8);
    let trace = generate_trace(&QueryTraceSpec::uniform(300, 93));

    obs::set_enabled(false);
    let reference = serve_trace(
        &engine,
        &trace,
        &ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        },
    )
    .results;

    for threads in [1usize, 2, 4, 8] {
        for on in [false, true] {
            obs::set_enabled(on);
            if on {
                obs::global().reset();
            }
            let cfg = ServeConfig {
                threads,
                batch: 32,
                ..ServeConfig::default()
            };
            let cfg = if on { cfg.with_traces() } else { cfg };
            let out = serve_trace(&engine, &trace, &cfg);
            assert_eq!(
                out.results, reference,
                "serve diverged (threads={threads}, metrics={on})"
            );
            if on {
                // One trace per query, in trace-ID order, consistent with
                // the results it annotates.
                assert_eq!(out.traces.len(), trace.len());
                for (i, t) in out.traces.iter().enumerate() {
                    assert_eq!(t.trace_id, i as u64, "traces must sort by trace id");
                    assert_eq!(
                        t.result_ids as usize,
                        reference[i].len(),
                        "trace {i} result count diverges"
                    );
                    assert!(t.worker < threads as u64, "trace {i} worker out of range");
                }
                let snap = obs::global().snapshot();
                assert_eq!(
                    snap.counter(obs::names::SERVE_QUERIES),
                    Some(trace.len() as u64)
                );
                let service = snap
                    .histogram(obs::names::SERVE_SERVICE_NANOS)
                    .expect("service histogram");
                assert_eq!(service.count, trace.len() as u64);
            } else {
                assert!(out.traces.is_empty(), "traces collected without opt-in");
            }
        }
    }
    obs::set_enabled(false);
}

#[test]
fn rtree_engine_is_also_unperturbed() {
    // The non-TRANSFORMERS engines share the serve plumbing; one spot
    // check guards the generic path.
    let _guard = OBS_LOCK.lock().unwrap();
    let elems = uniform(2_000, 94);
    let disk = Disk::default_in_memory();
    let tree = rtree::RTree::bulk_load(&disk, elems.clone());
    let engine = RtreeEngine::new(&tree, &disk);
    let cfg = ServeConfig {
        threads: 2,
        batch: 16,
        ..ServeConfig::default()
    };
    let trace = generate_trace(&QueryTraceSpec::uniform(120, 95));

    obs::set_enabled(false);
    let off = serve_trace(&engine, &trace, &cfg).results;
    obs::set_enabled(true);
    obs::global().reset();
    let on = serve_trace(&engine, &trace, &cfg.with_traces()).results;
    obs::set_enabled(false);
    assert_eq!(on, off);
}

#[test]
fn run_snapshot_round_trips_through_both_exporters() {
    let _guard = OBS_LOCK.lock().unwrap();
    let elems = uniform(2_000, 96);

    obs::set_enabled(true);
    obs::global().reset();
    let (disk, idx) = build(&elems); // build.* stage spans land here
    let engine = TransformersEngine::new(&idx, &disk).with_shared_cache(512, 4);
    let trace = generate_trace(&QueryTraceSpec::uniform(150, 97));
    let out = serve_trace(&engine, &trace, &ServeConfig::default().with_traces());
    let snap = obs::global().snapshot();
    obs::set_enabled(false);

    // JSON-lines round-trip, with trace lines interleaved the way the
    // CLI writes them: the parser must skip them and reproduce the
    // snapshot exactly.
    let mut text = snap.to_jsonl();
    for t in &out.traces {
        text.push_str(&t.to_json());
        text.push('\n');
    }
    let parsed = obs::MetricsSnapshot::parse_jsonl(&text).expect("round-trip parse");
    assert_eq!(parsed.entries, snap.entries);

    // The run must have produced the acceptance shape: cache, queue,
    // latency-histogram and per-stage timing metrics.
    assert!(snap.counter(obs::names::CACHE_HITS).is_some());
    assert!(snap.counter(obs::names::SERVE_QUERIES).is_some());
    assert!(snap.histogram(obs::names::SERVE_SERVICE_NANOS).is_some());
    assert!(snap
        .histogram(&format!("{}_nanos", obs::names::BUILD_UNIT_STR))
        .is_some());
    assert!(snap
        .counter(&format!("{}_cpu_nanos", obs::names::BUILD_FINALIZE))
        .is_some());

    // Prometheus text carries the same series under sanitized names.
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE cache_hits counter"), "{prom}");
    assert!(prom.contains("serve_service_nanos_bucket{le="), "{prom}");
    assert!(prom.contains("build_unit_str_nanos_sum"), "{prom}");
}
