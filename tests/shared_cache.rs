//! Acceptance: the shared page cache never changes results — only I/O.
//!
//! Stress shape: a **tiny** cache (heavy eviction + recycling + pinning)
//! under **8 workers**, for both the serving layer and the parallel join,
//! in both cache modes, always compared against caching-free references
//! (a full scan per query; the sequential private-pool join). A second
//! test asserts the perf direction the tentpole claims: at equal total
//! page budget the shared cache reads fewer pages than the private-pool
//! split and posts a higher hit fraction.

use transformers_repro::prelude::*;
use transformers_repro::serve::{
    serve_trace, GipsyEngine, QueryEngine, RtreeEngine, ServeConfig, TransformersEngine,
};
use transformers_repro::storage::Disk;

fn fixture(count: usize, seed: u64) -> (Disk, TransformersIndex, Vec<SpatialElement>) {
    let disk = Disk::in_memory(2048);
    let elems = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(count, seed)
    });
    let idx = TransformersIndex::build(&disk, elems.clone(), &IndexConfig::default());
    (disk, idx, elems)
}

fn full_scan(elems: &[SpatialElement], trace: &[SpatialQuery]) -> Vec<Vec<u64>> {
    trace
        .iter()
        .map(|q| {
            let mut ids: Vec<u64> = elems
                .iter()
                .filter(|e| q.matches(&e.mbb))
                .map(|e| e.id)
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// 8 serve workers over a cache of 8 frames (2 shards): constant
/// eviction, recycling and cross-worker pinning — results must equal the
/// full-scan reference for every engine.
#[test]
fn eight_workers_on_a_tiny_shared_cache_match_the_full_scan() {
    let (disk, idx, elems) = fixture(5000, 301);
    let rtree_disk = Disk::in_memory(2048);
    let tree = transformers_repro::baselines::rtree::RTree::bulk_load(&rtree_disk, elems.clone());
    let trace = generate_trace(&QueryTraceSpec::with_mix(
        300,
        ProbeMix::Clustered { clusters: 4 },
        302,
    ));
    let expected = full_scan(&elems, &trace);
    let cfg = ServeConfig {
        threads: 8,
        batch: 16,
        ..ServeConfig::default()
    };
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(TransformersEngine::new(&idx, &disk).with_shared_cache(8, 2)),
        Box::new(GipsyEngine::new(&idx, &disk).with_shared_cache(8, 2)),
        Box::new(RtreeEngine::new(&tree, &rtree_disk).with_shared_cache(8, 2)),
    ];
    for engine in &engines {
        let out = serve_trace(engine.as_ref(), &trace, &cfg);
        assert_eq!(out.results, expected, "{} diverges", engine.label());
        let cache = out.stats.cache.expect("shared cache stats present");
        assert!(
            cache.evictions > 0,
            "{}: an 8-frame cache must thrash: {cache:?}",
            engine.label()
        );
        assert!(cache.recycled_frames > 0, "{}", engine.label());
    }
}

/// The parallel join at 1/2/4/8 workers produces byte-identical pairs in
/// both cache modes, including under a starved cache.
#[test]
fn join_outputs_identical_in_both_cache_modes_at_any_worker_count() {
    let a = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::with_distribution(
            6_000,
            Distribution::MassiveCluster {
                clusters: 3,
                elements_per_cluster: 2_000,
            },
            303,
        )
    });
    let b = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(6_000, 304)
    });
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let idx_a = TransformersIndex::build(&disk_a, a, &IndexConfig::default());
    let idx_b = TransformersIndex::build(&disk_b, b, &IndexConfig::default());

    let reference = transformers_join(
        &idx_a,
        &disk_a,
        &idx_b,
        &disk_b,
        &JoinConfig::default().with_private_pools(),
    );
    assert!(!reference.pairs.is_empty());

    for pool_pages in [16, 1024] {
        for shared_cache in [true, false] {
            let cfg = JoinConfig {
                pool_pages,
                shared_cache,
                ..JoinConfig::default()
            };
            let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
            assert_eq!(
                seq.pairs, reference.pairs,
                "sequential pool_pages={pool_pages} shared={shared_cache}"
            );
            for threads in [1, 2, 4, 8] {
                let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
                assert_eq!(
                    par.pairs, reference.pairs,
                    "threads={threads} pool_pages={pool_pages} shared={shared_cache}"
                );
                assert!(par.stats.pages_read > 0);
            }
        }
    }
}

/// The perf direction of the tentpole: at equal total budget, the shared
/// cache strictly undercuts the private-pool split on page reads and
/// beats it on hit fraction (4-worker join; the serve-side counterpart
/// lives in `tfm-serve`'s unit tests and `bench_cache`).
///
/// Measured in the independent-worker scheduler mode: the fully adaptive
/// join's *work* (which pages get visited) varies with thread
/// interleaving, so a strict read-count comparison there is a coin flip;
/// with transforms/pruning off the page workload is fixed and the
/// comparison isolates the cache.
#[test]
fn shared_cache_beats_private_pools_on_the_four_worker_join() {
    let a = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::with_distribution(
            10_000,
            Distribution::MassiveCluster {
                clusters: 4,
                elements_per_cluster: 2_500,
            },
            305,
        )
    });
    let b = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(10_000, 306)
    });
    // 2 KiB pages (the bench harness default) keep the page count high
    // enough that the 64-page budget is genuinely scarce.
    let disk_a = Disk::in_memory(2048);
    let disk_b = Disk::in_memory(2048);
    let idx_a = TransformersIndex::build(&disk_a, a, &IndexConfig::default());
    let idx_b = TransformersIndex::build(&disk_b, b, &IndexConfig::default());

    let run = |shared: bool| {
        let cfg = JoinConfig {
            pool_pages: 32,
            shared_cache: shared,
            worker_role_transforms: false,
            cross_worker_pruning: false,
            ..JoinConfig::default()
        };
        parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4)
    };
    let shared = run(true);
    let private = run(false);
    assert_eq!(shared.pairs, private.pairs);
    assert!(
        shared.stats.pages_read < private.stats.pages_read,
        "shared {} pages vs private {}",
        shared.stats.pages_read,
        private.stats.pages_read
    );
    assert!(
        shared.stats.pool_hit_fraction() > private.stats.pool_hit_fraction(),
        "shared {:.3} hit fraction vs private {:.3}",
        shared.stats.pool_hit_fraction(),
        private.stats.pool_hit_fraction()
    );
}
