//! Index-reuse contract (§VII-C2): a TRANSFORMERS index is built per
//! dataset and can be joined against any number of other indexed datasets
//! without rebuilding, always producing correct results.

use transformers_repro::memjoin::nested_loop_join;
use transformers_repro::prelude::*;

fn oracle(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<ResultPair> {
    let mut s = JoinStats::default();
    canonicalize(nested_loop_join(a, b, &mut s))
}

#[test]
fn one_index_joins_many_partners() {
    let r = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(3_000, 1)
    });
    let disk_r = Disk::default_in_memory();
    let idx_r = TransformersIndex::build(&disk_r, r.clone(), &IndexConfig::default());

    for seed in 2..6u64 {
        let p = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(2_000, seed)
        });
        let disk_p = Disk::default_in_memory();
        let idx_p = TransformersIndex::build(&disk_p, p.clone(), &IndexConfig::default());
        let out = transformers_join(&idx_r, &disk_r, &idx_p, &disk_p, &JoinConfig::default());
        assert_eq!(out.pairs, oracle(&r, &p), "partner seed {seed}");
    }
}

#[test]
fn repeated_joins_are_deterministic_in_results() {
    let a = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(2_500, 7)
    });
    let b = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(2_500, 8)
    });
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let idx_a = TransformersIndex::build(&disk_a, a, &IndexConfig::default());
    let idx_b = TransformersIndex::build(&disk_b, b, &IndexConfig::default());

    let first = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
    for _ in 0..3 {
        let again = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
        assert_eq!(again.pairs, first.pairs);
    }
}

#[test]
fn join_is_symmetric_under_argument_order() {
    let a = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(1_500, 9)
    });
    let b = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(4_500, 10)
    });
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let idx_a = TransformersIndex::build(&disk_a, a, &IndexConfig::default());
    let idx_b = TransformersIndex::build(&disk_b, b, &IndexConfig::default());

    let ab = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
    let ba = transformers_join(&idx_b, &disk_b, &idx_a, &disk_a, &JoinConfig::default());
    let flipped: Vec<ResultPair> = ba.pairs.into_iter().map(|(x, y)| (y, x)).collect();
    assert_eq!(ab.pairs, canonicalize(flipped));
}
