//! Acceptance tests for the query-serving subsystem (`tfm-serve`):
//!
//! * every query of a trace answers **identically** at 1/2/4/8 workers,
//!   batched and unbatched, on every engine — and identically to a
//!   sequential full-scan reference;
//! * Hilbert-ordered batching strictly raises the sequential-read
//!   fraction over arrival-order replay on the same trace;
//! * property test: random datasets and traces keep the 1-worker and
//!   4-worker transformers engines equal to the oracle.

use proptest::prelude::*;
use tfm_datagen::{generate, generate_trace, DatasetSpec, ProbeMix, QueryTraceSpec};
use tfm_geom::{ElementId, SpatialElement, SpatialQuery};
use tfm_serve::{
    serve_trace, GipsyEngine, QueryEngine, RtreeEngine, ServeConfig, TransformersEngine,
};
use tfm_storage::Disk;
use transformers::{IndexConfig, TransformersIndex};

const PAGE: usize = 2048;

/// The sequential reference: one full scan per query.
fn reference(elems: &[SpatialElement], trace: &[SpatialQuery]) -> Vec<Vec<ElementId>> {
    trace
        .iter()
        .map(|q| {
            let mut ids: Vec<ElementId> = elems
                .iter()
                .filter(|e| q.matches(&e.mbb))
                .map(|e| e.id)
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

fn build_index(elems: &[SpatialElement]) -> (Disk, TransformersIndex) {
    let disk = Disk::in_memory(PAGE);
    let idx = TransformersIndex::build(&disk, elems.to_vec(), &IndexConfig::default());
    (disk, idx)
}

#[test]
fn every_engine_thread_count_and_batching_mode_agrees() {
    let elems = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(6_000, 400)
    });
    let (disk, idx) = build_index(&elems);
    let rtree_disk = Disk::in_memory(PAGE);
    let tree = tfm_rtree::RTree::bulk_load(&rtree_disk, elems.clone());

    for (mix, seed) in [
        (ProbeMix::Uniform, 401u64),
        (ProbeMix::Clustered { clusters: 5 }, 402),
        (ProbeMix::NeuroCorrelated, 403),
    ] {
        let trace = generate_trace(&QueryTraceSpec::with_mix(220, mix, seed));
        let expected = reference(&elems, &trace);
        let engines: Vec<Box<dyn QueryEngine>> = vec![
            Box::new(TransformersEngine::new(&idx, &disk)),
            Box::new(GipsyEngine::new(&idx, &disk)),
            Box::new(RtreeEngine::new(&tree, &rtree_disk)),
        ];
        for engine in &engines {
            for threads in [1usize, 2, 4, 8] {
                for hilbert in [true, false] {
                    let cfg = ServeConfig {
                        threads,
                        hilbert_batching: hilbert,
                        batch: 32,
                        queue_batches: 2,
                        ..ServeConfig::default()
                    };
                    let out = serve_trace(engine.as_ref(), &trace, &cfg);
                    assert_eq!(
                        out.results,
                        expected,
                        "{} mix={mix:?} threads={threads} hilbert={hilbert}",
                        engine.label()
                    );
                    assert_eq!(out.stats.queries, trace.len() as u64);
                    assert_eq!(
                        out.stats.per_worker_queries.iter().sum::<u64>(),
                        trace.len() as u64
                    );
                }
            }
        }
    }
}

#[test]
fn hilbert_batching_strictly_raises_sequential_reads() {
    // Sizeable index + small per-worker pool: arrival-order probes hop
    // across the disk, Hilbert order sweeps it. Results must not change;
    // the IoStats split must.
    let elems = generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::uniform(40_000, 404)
    });
    let (disk, idx) = build_index(&elems);
    let trace = generate_trace(&QueryTraceSpec {
        count: 2_000,
        max_window_side: 12.0,
        ..QueryTraceSpec::uniform(2_000, 405)
    });
    let engine = TransformersEngine::new(&idx, &disk);
    let base = ServeConfig {
        batch: 2_000,
        pool_pages: 64,
        ..ServeConfig::default()
    };
    let arrival = serve_trace(&engine, &trace, &base.without_hilbert_batching());
    let hilberted = serve_trace(&engine, &trace, &base);
    assert_eq!(arrival.results, hilberted.results);
    assert!(
        hilberted.stats.seq_read_fraction() > arrival.stats.seq_read_fraction(),
        "hilbert {:.3} must strictly beat arrival {:.3}",
        hilberted.stats.seq_read_fraction(),
        arrival.stats.seq_read_fraction()
    );
    // Locality also shows up as fewer pool misses (more overlap hits).
    assert!(hilberted.stats.pool_misses <= arrival.stats.pool_misses);
}

#[test]
#[ignore = "needs real cores; run explicitly in CI's multi-core serve job"]
fn four_workers_outrun_one_on_multicore() {
    // CPU-heavy trace (large windows -> many candidates and matches) so
    // per-query work dwarfs queue overhead; on a multi-core machine four
    // workers must beat the single-worker inline path.
    let elems = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(30_000, 406)
    });
    let (disk, idx) = build_index(&elems);
    let trace = generate_trace(&QueryTraceSpec {
        count: 4_000,
        max_window_side: 40.0,
        ..QueryTraceSpec::uniform(4_000, 407)
    });
    let engine = TransformersEngine::new(&idx, &disk);
    let cfg = ServeConfig {
        batch: 64,
        ..ServeConfig::default()
    };
    // Warm-up evens out lazy costs, then best-of-3 per worker count to
    // shave scheduler noise.
    let _ = serve_trace(&engine, &trace, &cfg);
    let best = |threads: usize| {
        (0..3)
            .map(|_| {
                serve_trace(&engine, &trace, &cfg.with_threads(threads))
                    .stats
                    .throughput_qps()
            })
            .fold(0.0f64, f64::max)
    };
    let one = best(1);
    let four = best(4);
    assert!(
        four > one,
        "4-worker throughput {four:.0} q/s must beat 1-worker {one:.0} q/s on multi-core"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_traces_serve_identically_at_any_worker_count(
        n in 500usize..2500,
        data_seed in 0u64..1000,
        trace_seed in 0u64..1000,
        queries in 20usize..120,
        batch in 1usize..64,
        max_side in 1.0f64..10.0,
    ) {
        let elems = generate(&DatasetSpec {
            max_side,
            ..DatasetSpec::uniform(n, data_seed)
        });
        let (disk, idx) = build_index(&elems);
        let trace = generate_trace(&QueryTraceSpec {
            count: queries,
            ..QueryTraceSpec::uniform(queries, trace_seed)
        });
        let expected = reference(&elems, &trace);
        let engine = TransformersEngine::new(&idx, &disk);
        for threads in [1usize, 4] {
            for hilbert in [true, false] {
                let cfg = ServeConfig {
                    threads,
                    batch,
                    hilbert_batching: hilbert,
                    queue_batches: 2,
                    ..ServeConfig::default()
                };
                let out = serve_trace(&engine, &trace, &cfg);
                prop_assert_eq!(
                    &out.results, &expected,
                    "threads={} hilbert={} batch={}", threads, hilbert, batch
                );
            }
        }
    }
}
