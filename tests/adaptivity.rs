//! Behavioural contracts of the adaptive machinery: transformations fire
//! where the paper says they should and stay quiet where they should not.

use transformers_repro::prelude::*;

fn run(
    a: Vec<SpatialElement>,
    b: Vec<SpatialElement>,
    cfg: &JoinConfig,
) -> transformers::TransformersStats {
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    // Small capacities give a rich node graph even at test scale, matching
    // the paper's elements-to-nodes proportions.
    let idx_cfg = IndexConfig {
        unit_capacity: Some(32),
        node_capacity: Some(16),
        ..IndexConfig::default()
    };
    let idx_a = TransformersIndex::build(&disk_a, a, &idx_cfg);
    let idx_b = TransformersIndex::build(&disk_b, b, &idx_cfg);
    transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, cfg).stats
}

fn uniform(count: usize, seed: u64) -> Vec<SpatialElement> {
    generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::uniform(count, seed)
    })
}

#[test]
fn extreme_contrast_triggers_transformations_and_filters_pages() {
    // 500x density contrast: the sparse side must guide and the layout
    // must descend, so only a small fraction of the dense side is read.
    let stats = run(uniform(800, 1), uniform(400_000, 2), &JoinConfig::default());
    assert!(
        stats.transformations() > 0,
        "extreme contrast must transform: {stats:?}"
    );
    let dense_pages = 400_000 / 32; // unit capacity 32 in run()
    assert!(
        (stats.pages_read as usize) < dense_pages / 2,
        "expected strong filtering, read {} of ~{} pages",
        stats.pages_read,
        dense_pages
    );
}

#[test]
fn uniform_similar_density_stays_coarse() {
    // Equal densities: volume ratios hover around 1, far from t_su, so the
    // join should stay at node granularity.
    let stats = run(
        uniform(20_000, 3),
        uniform(20_000, 4),
        &JoinConfig::default(),
    );
    assert_eq!(
        stats.layout_transformations + stats.element_layout_transformations,
        0,
        "similar densities must not split: {stats:?}"
    );
}

#[test]
fn no_tr_config_never_transforms_anywhere() {
    let cfg = JoinConfig::without_transformations();
    let stats = run(uniform(500, 5), uniform(100_000, 6), &cfg);
    assert_eq!(stats.transformations(), 0);
}

#[test]
fn overfit_thresholds_transform_more_than_cost_model() {
    let a = || {
        generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::with_distribution(
                30_000,
                Distribution::MassiveCluster {
                    clusters: 4,
                    elements_per_cluster: 4_000,
                },
                7,
            )
        })
    };
    let b = || uniform(30_000, 8);
    let over = run(
        a(),
        b(),
        &JoinConfig::default().with_thresholds(ThresholdPolicy::over_fit()),
    );
    let under = run(
        a(),
        b(),
        &JoinConfig::default().with_thresholds(ThresholdPolicy::under_fit()),
    );
    assert!(over.transformations() > under.transformations());
    assert_eq!(under.layout_transformations, 0);
}

#[test]
fn exploration_overhead_is_bounded() {
    // Fig. 14: the adaptive machinery must not dominate execution. At
    // laptop scale (in-memory metadata) overhead is a small share of CPU
    // time; assert a generous bound.
    let stats = run(
        uniform(50_000, 9),
        uniform(50_000, 10),
        &JoinConfig::default(),
    );
    let total_cpu = stats.join_cpu + stats.exploration_overhead;
    assert!(
        stats.exploration_overhead.as_secs_f64() <= 0.8 * total_cpu.as_secs_f64().max(1e-9),
        "overhead {:?} of cpu {:?}",
        stats.exploration_overhead,
        total_cpu
    );
}

#[test]
fn walk_fallbacks_are_rare_on_well_behaved_data() {
    let stats = run(
        uniform(30_000, 11),
        uniform(30_000, 12),
        &JoinConfig::default(),
    );
    // The Hilbert-seeded best-first walk should essentially never give up
    // on uniformly distributed data.
    assert!(
        stats.walk_fallbacks <= stats.walk_steps / 10 + 2,
        "too many fallbacks: {stats:?}"
    );
}
