//! The central correctness contract of the reproduction: **all four join
//! approaches produce exactly the same result set** on every workload of
//! the paper's evaluation, and that set equals the nested-loop oracle.

use transformers_repro::baselines::gipsy::{gipsy_join, GipsyConfig, GipsyStats, SparseFile};
use transformers_repro::baselines::pbsm::{pbsm_join_datasets, PbsmConfig};
use transformers_repro::baselines::rtree::{sync_join, RTree, RtreeStats};
use transformers_repro::memjoin::nested_loop_join;
use transformers_repro::prelude::*;

fn oracle(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<ResultPair> {
    let mut s = JoinStats::default();
    canonicalize(nested_loop_join(a, b, &mut s))
}

fn run_transformers(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<ResultPair> {
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let idx_a = TransformersIndex::build(&disk_a, a.to_vec(), &IndexConfig::default());
    let idx_b = TransformersIndex::build(&disk_b, b.to_vec(), &IndexConfig::default());
    transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default()).pairs
}

fn run_pbsm(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<ResultPair> {
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let (pairs, _) = pbsm_join_datasets(&disk_a, a, &disk_b, b, &PbsmConfig::default());
    canonicalize(pairs)
}

fn run_rtree(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<ResultPair> {
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let tree_a = RTree::bulk_load(&disk_a, a.to_vec());
    let tree_b = RTree::bulk_load(&disk_b, b.to_vec());
    let mut pool_a = BufferPool::with_default_capacity(&disk_a);
    let mut pool_b = BufferPool::with_default_capacity(&disk_b);
    let mut stats = RtreeStats::default();
    canonicalize(sync_join(
        &mut pool_a,
        &tree_a,
        &mut pool_b,
        &tree_b,
        &mut stats,
    ))
}

fn run_gipsy(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<ResultPair> {
    // GIPSY: smaller side is sparse.
    let (sparse, dense, flipped) = if a.len() <= b.len() {
        (a, b, false)
    } else {
        (b, a, true)
    };
    let disk_s = Disk::default_in_memory();
    let disk_d = Disk::default_in_memory();
    let sf = SparseFile::write(&disk_s, sparse.to_vec());
    let di = TransformersIndex::build(&disk_d, dense.to_vec(), &IndexConfig::default());
    let mut stats = GipsyStats::default();
    let pairs = gipsy_join(
        &disk_s,
        &sf,
        &disk_d,
        &di,
        &GipsyConfig::default(),
        &mut stats,
    );
    canonicalize(if flipped {
        pairs.into_iter().map(|(s, d)| (d, s)).collect()
    } else {
        pairs
    })
}

fn check_all(a: &[SpatialElement], b: &[SpatialElement], label: &str) {
    let expected = oracle(a, b);
    assert_eq!(run_transformers(a, b), expected, "{label}: TRANSFORMERS");
    assert_eq!(run_pbsm(a, b), expected, "{label}: PBSM");
    assert_eq!(run_rtree(a, b), expected, "{label}: R-TREE");
    assert_eq!(run_gipsy(a, b), expected, "{label}: GIPSY");
}

fn ds(count: usize, distribution: Distribution, seed: u64) -> Vec<SpatialElement> {
    generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::with_distribution(count, distribution, seed)
    })
}

#[test]
fn similar_density_uniform() {
    let a = ds(2_000, Distribution::Uniform, 100);
    let b = ds(2_000, Distribution::Uniform, 101);
    check_all(&a, &b, "uniform 1:1");
}

#[test]
fn contrasting_density_100x() {
    let a = ds(100, Distribution::Uniform, 102);
    let b = ds(10_000, Distribution::Uniform, 103);
    check_all(&a, &b, "uniform 1:100");
    check_all(&b, &a, "uniform 100:1");
}

#[test]
fn non_uniform_distributions() {
    let a = ds(3_000, Distribution::DenseCluster { clusters: 15 }, 104);
    let b = ds(3_000, Distribution::UniformCluster { clusters: 6 }, 105);
    check_all(&a, &b, "dense x uniformcluster");
}

#[test]
fn massive_cluster_skew() {
    let a = ds(
        4_000,
        Distribution::MassiveCluster {
            clusters: 3,
            elements_per_cluster: 1_000,
        },
        106,
    );
    let b = ds(4_000, Distribution::Uniform, 107);
    check_all(&a, &b, "massive x uniform");
}

#[test]
fn neuroscience_surrogate() {
    let (a, b) = neuro::axon_dendrite_pair(5_000, 108);
    check_all(&a, &b, "axons x dendrites");
}

#[test]
fn identical_datasets_self_join_shape() {
    // Joining a dataset with a copy of itself: every element pairs at least
    // with its twin.
    let a = ds(1_000, Distribution::Uniform, 109);
    let expected = oracle(&a, &a);
    assert!(expected.len() >= 1_000);
    check_all(&a, &a, "self");
}

#[test]
fn parallel_vs_sequential() {
    // The parallel execution subsystem must return the exact sequential
    // result set at every thread count, on both benign and skewed data.
    let workloads = [
        (
            "uniform",
            ds(3_000, Distribution::Uniform, 112),
            ds(3_000, Distribution::Uniform, 113),
        ),
        (
            "clustered",
            ds(
                3_000,
                Distribution::MassiveCluster {
                    clusters: 3,
                    elements_per_cluster: 1_000,
                },
                114,
            ),
            ds(3_000, Distribution::DenseCluster { clusters: 12 }, 115),
        ),
    ];
    for (label, a, b) in &workloads {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let idx_a = TransformersIndex::build(&disk_a, a.to_vec(), &IndexConfig::default());
        let idx_b = TransformersIndex::build(&disk_b, b.to_vec(), &IndexConfig::default());
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        assert_eq!(seq.pairs, oracle(a, b), "{label}: sequential vs oracle");
        for threads in [1, 2, 4] {
            let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
            assert_eq!(
                par.pairs, seq.pairs,
                "{label}: parallel ({threads} threads) vs sequential"
            );
        }
    }
}

#[test]
fn disjoint_regions_yield_nothing() {
    let a = generate(&DatasetSpec {
        universe: Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(100.0, 100.0, 100.0)),
        max_side: 3.0,
        ..DatasetSpec::uniform(1_000, 110)
    });
    let b = generate(&DatasetSpec {
        universe: Aabb::new(
            Point3::new(500.0, 500.0, 500.0),
            Point3::new(900.0, 900.0, 900.0),
        ),
        max_side: 3.0,
        ..DatasetSpec::uniform(1_000, 111)
    });
    let expected = oracle(&a, &b);
    assert!(expected.is_empty());
    check_all(&a, &b, "disjoint");
}
