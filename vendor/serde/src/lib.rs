//! Vendored stand-in for `serde`: re-exports the no-op derive macros. The
//! workspace derives `Serialize`/`Deserialize` on a few plain-data structs
//! but never serializes through serde, so inert derives suffice.

pub use serde_derive::{Deserialize, Serialize};
