//! Vendored stand-in for `proptest` implementing the API subset this
//! workspace's property tests use: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range/tuple/`Vec` strategies,
//! [`arbitrary::any`], `prop::collection::{vec, btree_map}`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate: generation is seeded deterministically
//! from the test name (every run explores the same cases), and failing
//! cases are **not shrunk** — the panic message reports the raw case
//! number instead. That trades debugging convenience for zero
//! dependencies, which is what this offline build needs.

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Number-of-cases configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many random cases each property test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic xoshiro256++ generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            Self {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in [0, span) for span >= 1.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span >= 1);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

/// The value-generation abstraction.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a seeded RNG.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a deterministic sampler.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            v.min(f64::from_bits(self.end.to_bits().wrapping_sub(1)))
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty inclusive range strategy");
                    let span = (*self.end() as u64) - (*self.start() as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    self.start() + rng.below(span + 1) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    // A Vec of strategies generates element-wise (what `prop_flat_map`
    // closures returning `Vec<impl Strategy>` rely on).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` — full-domain generation for simple types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(std::marker::PhantomData<A>);

    /// Full-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    impl Arbitrary for () {
        fn arbitrary(_rng: &mut TestRng) -> Self {}
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

/// Collection strategies (`prop::collection::{vec, btree_map}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A `BTreeMap` with `size`-many entries (keys drawn until distinct).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Key collisions may make the map smaller than `n`; bound the
            // retry budget so narrow key domains cannot loop forever.
            let mut attempts = 0usize;
            while map.len() < n && attempts < n * 10 + 16 {
                attempts += 1;
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works from the prelude.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface used by tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property; failure reports the current case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two expressions are equal within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two expressions are unequal within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `#[test] fn name(pattern in strategy, ...)`
/// becomes a normal `#[test]` that runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($param:pat_param in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    $( let $param = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("t");
        for _ in 0..1000 {
            let x = (0.5..2.5f64).generate(&mut rng);
            assert!((0.5..2.5).contains(&x));
            let n = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&n));
            let i = (0u32..=3).generate(&mut rng);
            assert!(i <= 3);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::TestRng::from_name("v");
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_map_strategy_hits_exact_size() {
        let mut rng = crate::test_runner::TestRng::from_name("m");
        let m = prop::collection::btree_map(any::<u64>(), any::<u64>(), 20).generate(&mut rng);
        assert_eq!(m.len(), 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u64..5, 0u64..5), c in 0.0..1.0f64) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!((0.0..1.0).contains(&c));
            prop_assert_ne!(c, 2.0);
        }
    }
}
