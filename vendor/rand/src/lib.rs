//! Vendored stand-in for `rand` with the rand-0.9 API subset this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random::<f64>()` and `Rng::random_range(lo..hi)`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast and statistically solid for workload generation. It intentionally
//! does NOT match the stream of the real `StdRng` (ChaCha12); all datasets
//! in this repository are generated through this crate, so determinism
//! within the workspace is what matters.

use std::ops::Range;

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value covering the type's standard domain
    /// (`f64` ∈ [0, 1)).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_in(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        // Clamp guards the pathological rounding case u*(end-start)==width.
        (self.start + u * (self.end - self.start)).clamp(
            self.start,
            f64::from_bits(self.end.to_bits().wrapping_sub(1)),
        )
    }
}

macro_rules! int_range_impl {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias is irrelevant for workload generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $ty
            }
        }
    )*};
}

int_range_impl!(u64, usize, u32, u16, u8);

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_range_respected() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.random_range(-3.0..5.5f64);
            assert!((-3.0..5.5).contains(&x));
        }
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.random_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
