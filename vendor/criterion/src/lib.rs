//! Vendored stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the API subset this workspace's benches use. Each bench
//! runs a short warmup followed by `sample_size` timed iterations and
//! prints min/mean/max per benchmark id. No statistics machinery, plots
//! or baselines — just honest timings, suitable for relative comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.default_sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warmup call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup, and forces lazy setup
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a callable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4); // 1 warmup + 3 samples
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
