//! Vendored stand-in for `bytes`: the `Buf`/`BufMut` subset this workspace
//! uses — little-endian integer/float accessors with cursor semantics over
//! `&[u8]` (reads advance the slice) and `Vec<u8>` (writes append).

macro_rules! get_impl {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $n:expr) => {
        $(#[$doc])*
        fn $name(&mut self) -> $ty {
            let mut raw = [0u8; $n];
            self.copy_to_slice(&mut raw);
            <$ty>::from_le_bytes(raw)
        }
    };
}

/// Cursor-style reads from a byte source.
pub trait Buf {
    /// Remaining readable bytes.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_impl!(
        /// Reads a little-endian `u16`, advancing the cursor.
        get_u16_le, u16, 2
    );
    get_impl!(
        /// Reads a little-endian `u32`, advancing the cursor.
        get_u32_le, u32, 4
    );
    get_impl!(
        /// Reads a little-endian `u64`, advancing the cursor.
        get_u64_le, u64, 8
    );
    get_impl!(
        /// Reads a little-endian `f64`, advancing the cursor.
        get_f64_le, f64, 8
    );
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let cur = *self;
        let (head, rest) = cur.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

macro_rules! put_impl {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        fn $name(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        }
    };
}

/// Append-style writes to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_impl!(
        /// Appends a `u16` in little-endian byte order.
        put_u16_le, u16
    );
    put_impl!(
        /// Appends a `u32` in little-endian byte order.
        put_u32_le, u32
    );
    put_impl!(
        /// Appends a `u64` in little-endian byte order.
        put_u64_le, u64
    );
    put_impl!(
        /// Appends an `f64` in little-endian byte order.
        put_f64_le, f64
    );
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(600);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(-2.5);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 600);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
