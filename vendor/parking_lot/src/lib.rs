//! Vendored stand-in for `parking_lot`: thin poison-free wrappers over
//! `std::sync` locks with the subset of the API this workspace uses.

use std::sync::PoisonError;

/// A reader-writer lock that never poisons (matching parking_lot semantics).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let g = m.try_lock().expect("uncontended try_lock succeeds");
        assert!(m.try_lock().is_none(), "held lock must not be re-acquired");
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
